// Package units provides physical units, conversions, and the Summit system
// constants used throughout the reproduction.
//
// All power values are carried as Watts (float64), energy as Joules,
// temperature as degrees Celsius unless a type says otherwise. The small
// wrapper types exist to make API signatures self-documenting and to host
// conversion methods; they are plain float64s with zero runtime cost.
package units

import "fmt"

// Watts is electrical or thermal power in watts.
type Watts float64

// Joules is energy.
type Joules float64

// Celsius is temperature in degrees Celsius.
type Celsius float64

// Fahrenheit is temperature in degrees Fahrenheit. Facility-side set points
// in the paper are quoted in °F (e.g. the 70°F MTW supply).
type Fahrenheit float64

// TonsRefrigeration is cooling capacity; 1 ton = 3516.8528 W of heat removal.
type TonsRefrigeration float64

// GPM is a volumetric water flow rate in US gallons per minute.
type GPM float64

// Conversion factors. These named constants are the only sanctioned spelling
// of unit scale factors: the reprolint unitsafety analyzer rejects raw
// 1000/1e6/3600-style literals everywhere outside this package.
const (
	// WattsPerTon converts tons of refrigeration to watts of heat removal.
	WattsPerTon = 3516.8528420667
	// BTUPerHourPerWatt converts watts to BTU/hr.
	BTUPerHourPerWatt = 3.412141633
	// JoulesPerKWh converts kilowatt-hours to joules.
	JoulesPerKWh = 3.6e6
	// JoulesPerMWh converts megawatt-hours to joules.
	JoulesPerMWh = 3.6e9
	// JoulesPerGJ converts gigajoules to joules.
	JoulesPerGJ = 1e9
	// WattsPerKW converts kilowatts to watts.
	WattsPerKW = 1e3
	// WattsPerMW converts megawatts to watts.
	WattsPerMW = 1e6
	// SecondsPerHour converts hours to seconds. Untyped so it composes with
	// both integer timestamps and float durations.
	SecondsPerHour = 3600
	// WaterHeatCapacityJPerKgK is the specific heat of water (J/(kg·K)).
	WaterHeatCapacityJPerKgK = 4186.0
	// WaterKgPerGallon is the mass of one US gallon of water in kg.
	WaterKgPerGallon = 3.78541
)

// KW returns the power in kilowatts.
func (w Watts) KW() float64 { return float64(w) / 1e3 }

// MW returns the power in megawatts.
func (w Watts) MW() float64 { return float64(w) / 1e6 }

// BTUPerHour returns the equivalent thermal power in BTU/hr.
func (w Watts) BTUPerHour() float64 { return float64(w) * BTUPerHourPerWatt }

// Tons returns the equivalent cooling duty in tons of refrigeration.
func (w Watts) Tons() TonsRefrigeration {
	return TonsRefrigeration(float64(w) / WattsPerTon)
}

// Watts returns the heat-removal rate of t tons of refrigeration.
func (t TonsRefrigeration) Watts() Watts { return Watts(float64(t) * WattsPerTon) }

// KWh returns the energy in kilowatt-hours.
func (j Joules) KWh() float64 { return float64(j) / JoulesPerKWh }

// MWh returns the energy in megawatt-hours.
func (j Joules) MWh() float64 { return float64(j) / (1e3 * JoulesPerKWh) }

// F converts Celsius to Fahrenheit.
func (c Celsius) F() Fahrenheit { return Fahrenheit(float64(c)*9/5 + 32) }

// C converts Fahrenheit to Celsius.
func (f Fahrenheit) C() Celsius { return Celsius((float64(f) - 32) * 5 / 9) }

// String implements fmt.Stringer with an adaptive scale (W, kW, MW).
func (w Watts) String() string {
	switch {
	case w >= 1e6 || w <= -1e6:
		return fmt.Sprintf("%.3fMW", w.MW())
	case w >= 1e3 || w <= -1e3:
		return fmt.Sprintf("%.2fkW", w.KW())
	default:
		return fmt.Sprintf("%.1fW", float64(w))
	}
}

// String implements fmt.Stringer with an adaptive scale (J, kWh, MWh).
func (j Joules) String() string {
	switch {
	case j >= 1e3*JoulesPerKWh:
		return fmt.Sprintf("%.3fMWh", j.MWh())
	case j >= JoulesPerKWh:
		return fmt.Sprintf("%.2fkWh", j.KWh())
	default:
		return fmt.Sprintf("%.1fJ", float64(j))
	}
}

func (c Celsius) String() string    { return fmt.Sprintf("%.1f°C", float64(c)) }
func (f Fahrenheit) String() string { return fmt.Sprintf("%.1f°F", float64(f)) }

// WaterHeatPickup returns the temperature rise of water flowing at the given
// rate while absorbing the given heat load. It is the steady-state
// ΔT = Q / (ṁ·c_p) relation used by the cold-plate and loop models.
func WaterHeatPickup(load Watts, flow GPM) Celsius {
	if flow <= 0 {
		return 0
	}
	massFlowKgPerSec := float64(flow) * WaterKgPerGallon / 60.0
	return Celsius(float64(load) / (massFlowKgPerSec * WaterHeatCapacityJPerKgK))
}

// FlowForHeatLoad returns the water flow required to absorb load with the
// given allowable temperature rise.
func FlowForHeatLoad(load Watts, rise Celsius) GPM {
	if rise <= 0 {
		return 0
	}
	massFlowKgPerSec := float64(load) / (float64(rise) * WaterHeatCapacityJPerKgK)
	return GPM(massFlowKgPerSec * 60.0 / WaterKgPerGallon)
}
