package units

// Summit system constants (paper Tables 1 and 3). These are the published
// specification values for the OLCF Summit system and its facility; the
// simulator and the analysis sanity checks both reference them.
const (
	// SummitNodes is the number of IBM AC922 8335-GTX compute nodes.
	SummitNodes = 4626
	// SummitCabinets is the number of water-cooled compute cabinets.
	SummitCabinets = 257
	// NodesPerCabinet is the node count per cabinet.
	NodesPerCabinet = 18
	// GPUsPerNode is the number of NVIDIA Volta V100 GPUs per node.
	GPUsPerNode = 6
	// CPUsPerNode is the number of IBM Power9 processors per node.
	CPUsPerNode = 2
	// SummitGPUs is the total GPU population (27,756).
	SummitGPUs = SummitNodes * GPUsPerNode
	// SummitCPUs is the total CPU population (9,252).
	SummitCPUs = SummitNodes * CPUsPerNode
)

// Frontier-class system constants, for the heterogeneous-fleet presets. The
// values follow the published HPE Cray EX235a configuration the ExaDigiT
// twin models: 9,408 blades in 74 high-density direct-liquid cabinets.
const (
	// FrontierNodes is the compute-blade count of the Frontier-like preset.
	FrontierNodes = 9408
	// FrontierNodesPerCabinet is the blade count of one EX cabinet.
	FrontierNodesPerCabinet = 128
	// FrontierCabinets is the cabinet count (ceil(9408/128) = 74 with the
	// last cabinet part-populated).
	FrontierCabinets = (FrontierNodes + FrontierNodesPerCabinet - 1) / FrontierNodesPerCabinet
)

// Power envelope constants.
const (
	// NodeMaxPower is the per-node maximum input power (220–240 V AC).
	NodeMaxPower Watts = 2300
	// NodeIdlePower approximates per-node idle draw; 4,626 nodes idling
	// yield the paper's ~2.5 MW system idle floor.
	NodeIdlePower Watts = 540
	// SystemPeakPower is Summit's peak power consumption.
	SystemPeakPower Watts = 13e6
	// SystemIdlePower is the observed idle floor of the whole system.
	SystemIdlePower Watts = 2.5e6
	// FacilityCapacity is the supporting facility's electrical capacity.
	FacilityCapacity Watts = 20e6
	// CPUTDP is the IBM Power9 22C thermal design power.
	CPUTDP Watts = 300
	// GPUTDP is the NVIDIA V100 SXM2 thermal design power.
	GPUTDP Watts = 300
	// NodeThermalOutputMax is the max thermal output (8,872 BTU/hr ≈ 2.6kW).
	NodeThermalOutputMax Watts = 2600
)

// Clock and microarchitecture constants.
const (
	// CPUFrequencyGHz is the Power9 nominal clock.
	CPUFrequencyGHz = 3.07
	// CPUCores per Power9 socket.
	CPUCores = 22
	// CPUThreadsPerCore (SMT4).
	CPUThreadsPerCore = 4
	// GPUBaseFrequencyMHz and GPUBoostFrequencyMHz bound the V100 clock.
	GPUBaseFrequencyMHz  = 1335
	GPUBoostFrequencyMHz = 1530
	// GPUSMs is the streaming multiprocessor count of a V100.
	GPUSMs = 80
	// GPUMemoryGB is HBM2 capacity per GPU.
	GPUMemoryGB = 16
)

// Facility water-loop set points (paper Table 1, quoted in °F).
const (
	// MTWSupplyMinF..MTWSupplyMaxF bound the secondary-loop supply.
	MTWSupplyMinF Fahrenheit = 64
	MTWSupplyMaxF Fahrenheit = 71
	// MTWSupplyNominalF is the design supply temperature from the CEP.
	MTWSupplyNominalF Fahrenheit = 70
	// MTWReturnMinF..MTWReturnMaxF bound the secondary-loop return.
	MTWReturnMinF Fahrenheit = 80
	MTWReturnMaxF Fahrenheit = 100
	// TowerLoopMinF..TowerLoopMaxF bound the evaporative primary loop.
	TowerLoopMinF Fahrenheit = 59
	TowerLoopMaxF Fahrenheit = 87
	// ChillerLoopMinF..ChillerLoopMaxF bound the trim chilled-water loop.
	ChillerLoopMinF Fahrenheit = 42
	ChillerLoopMaxF Fahrenheit = 48
	// CoolingTowers and Chillers are the CEP equipment counts.
	CoolingTowers = 8
	Chillers      = 5
)

// Telemetry constants (paper §2–3).
const (
	// TelemetrySampleInterval is the per-node emit interval in seconds.
	TelemetrySampleIntervalSec = 1
	// MetricsPerNode is the approximate per-node metric count.
	MetricsPerNode = 100
	// IngestMetricsPerSec is the aggregate ingest rate (460k metrics/s).
	IngestMetricsPerSec = 460_000
	// FanInRatio is the websocket fan-in ratio of the collection tier.
	FanInRatio = 288
	// MeanPropagationDelaySec is the average sensor-to-analysis delay.
	MeanPropagationDelaySec = 4.1
	// MeanTimestampDelaySec / MaxTimestampDelaySec bound the delay between
	// sampling on the node and timestamping at the aggregation point.
	MeanTimestampDelaySec = 2.5
	MaxTimestampDelaySec  = 5.0
	// CoarsenWindowSec is the analysis coarsening window (paper §3).
	CoarsenWindowSec = 10
)

// SchedulingClass is a Summit batch scheduling class (paper Table 3);
// Class 1 is the leadership class.
type SchedulingClass int

// Scheduling classes by job node count.
const (
	Class1 SchedulingClass = 1 + iota
	Class2
	Class3
	Class4
	Class5
)

// ClassPolicy describes the node-count range and walltime cap of a class.
type ClassPolicy struct {
	Class       SchedulingClass
	MinNodes    int
	MaxNodes    int
	MaxWallHour float64
}

// ClassPolicies is the Summit scheduling policy table (paper Table 3).
var ClassPolicies = [...]ClassPolicy{
	{Class1, 2765, 4608, 24},
	{Class2, 922, 2764, 24},
	{Class3, 92, 921, 12},
	{Class4, 46, 91, 6},
	{Class5, 1, 45, 2},
}

// ClassForNodes returns the scheduling class for a job of n nodes.
// Jobs larger than the Class 1 cap still classify as Class 1.
func ClassForNodes(n int) SchedulingClass {
	switch {
	case n >= 2765:
		return Class1
	case n >= 922:
		return Class2
	case n >= 92:
		return Class3
	case n >= 46:
		return Class4
	default:
		return Class5
	}
}

// Policy returns the policy row for class c. It panics on an invalid class,
// which indicates a programming error rather than bad data.
func (c SchedulingClass) Policy() ClassPolicy {
	if c < Class1 || c > Class5 {
		panic("units: invalid scheduling class")
	}
	return ClassPolicies[c-1]
}

func (c SchedulingClass) String() string {
	return [...]string{"", "Class1", "Class2", "Class3", "Class4", "Class5"}[c]
}

// EdgeThresholdPerNode is the per-node power change that defines a rising or
// falling edge in the paper's dynamics analysis (§4.2): 868 W per node,
// i.e. ≈4 MW at the full 4,608-node scale.
const EdgeThresholdPerNode Watts = 868
