// Package tsagg implements the time-series aggregation layer of the paper's
// methodology (§3): coarsening 1 Hz telemetry into 10-second windows that
// keep count/min/max/mean/std, collapsing per-node series to cluster level,
// and joining series with job allocations.
package tsagg

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Sample is one raw telemetry observation.
type Sample struct {
	T int64   // unix seconds
	V float64 // metric value
}

// WindowStat is the statistical summary of one coarsening window — the tuple
// the paper stores per series per 10-second window to avoid information loss.
type WindowStat struct {
	T     int64 // window start (unix seconds, aligned to the window size)
	Count int64
	Min   float64
	Max   float64
	Mean  float64
	Std   float64
}

// Coarsener streams raw samples into aligned windows. Feed samples in
// non-decreasing time order; completed windows are delivered to the emit
// callback. The zero value is not usable; call NewCoarsener.
type Coarsener struct {
	window int64
	emit   func(WindowStat)
	cur    int64 // current window start; math.MinInt64 when empty
	m      stats.Moments
}

// NewCoarsener returns a Coarsener with the given window size in seconds.
// It panics if window <= 0 or emit is nil (programming errors).
func NewCoarsener(window int64, emit func(WindowStat)) *Coarsener {
	if window <= 0 {
		panic("tsagg: non-positive coarsening window")
	}
	if emit == nil {
		panic("tsagg: nil emit callback")
	}
	return &Coarsener{window: window, emit: emit, cur: math.MinInt64}
}

// Add feeds one sample. Samples whose timestamp precedes the current window
// are counted into the current window rather than dropped: the telemetry
// path timestamps payloads up to 5 s late (paper §3), so small reordering is
// expected and window assignment tolerates it.
func (c *Coarsener) Add(t int64, v float64) {
	ws := t - mod(t, c.window)
	if c.cur == math.MinInt64 {
		c.cur = ws
	}
	if ws > c.cur {
		c.flush()
		c.cur = ws
	}
	c.m.Add(v)
}

func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

func (c *Coarsener) flush() {
	if c.m.N == 0 {
		return
	}
	c.emit(WindowStat{
		T:     c.cur,
		Count: c.m.N,
		Min:   c.m.Min,
		Max:   c.m.Max,
		Mean:  c.m.Mean(),
		Std:   c.m.Std(),
	})
	c.m.Reset()
}

// Flush emits any pending partial window. Call once after the last Add.
func (c *Coarsener) Flush() { c.flush() }

// Coarsen is the batch form: it coarsens samples (already time-ordered) into
// window statistics.
func Coarsen(samples []Sample, window int64) []WindowStat {
	var out []WindowStat
	c := NewCoarsener(window, func(w WindowStat) { out = append(out, w) })
	for _, s := range samples {
		c.Add(s.T, s.V)
	}
	c.Flush()
	return out
}

// Series is a regular time series: a start time, a fixed step, and values.
// NaN marks missing observations.
type Series struct {
	Start int64 // unix seconds of Vals[0]
	Step  int64 // seconds between values
	Vals  []float64
}

// NewSeries allocates a series of n NaNs.
func NewSeries(start, step int64, n int) *Series {
	if step <= 0 {
		panic("tsagg: non-positive series step")
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = math.NaN()
	}
	return &Series{Start: start, Step: step, Vals: v}
}

// Len returns the number of slots.
func (s *Series) Len() int { return len(s.Vals) }

// End returns the exclusive end time.
func (s *Series) End() int64 { return s.Start + int64(len(s.Vals))*s.Step }

// TimeAt returns the timestamp of index i.
func (s *Series) TimeAt(i int) int64 { return s.Start + int64(i)*s.Step }

// Index returns the slot index of time t and whether it is in range.
func (s *Series) Index(t int64) (int, bool) {
	if t < s.Start || s.Step <= 0 {
		return 0, false
	}
	i := int((t - s.Start) / s.Step)
	return i, i < len(s.Vals)
}

// Set stores v at time t if in range, returning whether it was stored.
func (s *Series) Set(t int64, v float64) bool {
	i, ok := s.Index(t)
	if ok {
		s.Vals[i] = v
	}
	return ok
}

// At returns the value at time t, or NaN if out of range.
func (s *Series) At(t int64) float64 {
	i, ok := s.Index(t)
	if !ok {
		return math.NaN()
	}
	return s.Vals[i]
}

// Slice returns the sub-series covering [t0, t1). Times are clamped to the
// series range; an empty intersection yields a zero-length series. The
// returned series shares backing storage.
func (s *Series) Slice(t0, t1 int64) *Series {
	if t0 < s.Start {
		t0 = s.Start
	}
	if t1 > s.End() {
		t1 = s.End()
	}
	if t1 <= t0 {
		return &Series{Start: t0, Step: s.Step}
	}
	i0 := int((t0 - s.Start) / s.Step)
	i1 := int((t1 - s.Start + s.Step - 1) / s.Step)
	return &Series{Start: s.TimeAt(i0), Step: s.Step, Vals: s.Vals[i0:i1]}
}

// Clean returns the non-NaN values of the series.
func (s *Series) Clean() []float64 {
	out := make([]float64, 0, len(s.Vals))
	for _, v := range s.Vals {
		if !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	return out
}

// Integrate returns the approximate integral ∑ v·step of the non-NaN
// values — power (W) integrated over time yields energy (J).
func (s *Series) Integrate() float64 {
	sum := 0.0
	for _, v := range s.Vals {
		if !math.IsNaN(v) {
			sum += v * float64(s.Step)
		}
	}
	return sum
}

// Stats summarizes the non-NaN values.
func (s *Series) Stats() stats.Moments { return stats.Summarize(s.Clean()) }

// FromWindows builds a mean-valued series from window statistics, covering
// [start, end) with the given step (normally the coarsening window).
func FromWindows(ws []WindowStat, start, end, step int64) *Series {
	n := int((end - start + step - 1) / step)
	if n < 0 {
		n = 0
	}
	s := NewSeries(start, step, n)
	for _, w := range ws {
		s.Set(w.T, w.Mean)
	}
	return s
}

// AggKind selects how Combine collapses values across series.
type AggKind int

// Aggregation kinds.
const (
	AggSum AggKind = iota
	AggMean
	AggMax
	AggMin
	AggCount // number of non-NaN contributors
)

// Combine collapses several aligned series element-wise into one. All series
// must share Start, Step and Len; NaNs are skipped per-slot (a slot with no
// contributors stays NaN, except AggCount which yields 0).
func Combine(kind AggKind, series []*Series) (*Series, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("tsagg: Combine of no series")
	}
	first := series[0]
	for i, s := range series {
		if s.Start != first.Start || s.Step != first.Step || s.Len() != first.Len() {
			return nil, fmt.Errorf("tsagg: series %d misaligned", i)
		}
	}
	out := NewSeries(first.Start, first.Step, first.Len())
	for i := 0; i < first.Len(); i++ {
		var acc float64
		n := 0
		for _, s := range series {
			v := s.Vals[i]
			if math.IsNaN(v) {
				continue
			}
			if n == 0 {
				acc = v
			} else {
				switch kind {
				case AggSum, AggMean:
					acc += v
				case AggMax:
					if v > acc {
						acc = v
					}
				case AggMin:
					if v < acc {
						acc = v
					}
				}
			}
			n++
		}
		switch {
		case kind == AggCount:
			out.Vals[i] = float64(n)
		case n == 0:
			// leave NaN
		case kind == AggMean:
			out.Vals[i] = acc / float64(n)
		default:
			out.Vals[i] = acc
		}
	}
	return out, nil
}

// Downsample re-coarsens a series by an integer factor, averaging the
// non-NaN values in each group. factor <= 1 returns a copy.
func (s *Series) Downsample(factor int) *Series {
	if factor <= 1 {
		cp := NewSeries(s.Start, s.Step, s.Len())
		copy(cp.Vals, s.Vals)
		return cp
	}
	n := (s.Len() + factor - 1) / factor
	out := NewSeries(s.Start, s.Step*int64(factor), n)
	for g := 0; g < n; g++ {
		var sum float64
		cnt := 0
		for i := g * factor; i < (g+1)*factor && i < s.Len(); i++ {
			if v := s.Vals[i]; !math.IsNaN(v) {
				sum += v
				cnt++
			}
		}
		if cnt > 0 {
			out.Vals[g] = sum / float64(cnt)
		}
	}
	return out
}
