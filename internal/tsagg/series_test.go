package tsagg

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCoarsenBasic(t *testing.T) {
	var samples []Sample
	// Two full 10s windows: values 0..9 then 10..19.
	for i := 0; i < 20; i++ {
		samples = append(samples, Sample{T: 1000 + int64(i), V: float64(i)})
	}
	ws := Coarsen(samples, 10)
	if len(ws) != 2 {
		t.Fatalf("got %d windows, want 2", len(ws))
	}
	w0 := ws[0]
	if w0.T != 1000 || w0.Count != 10 || w0.Min != 0 || w0.Max != 9 || !approx(w0.Mean, 4.5, 1e-12) {
		t.Errorf("window 0 = %+v", w0)
	}
	w1 := ws[1]
	if w1.T != 1010 || w1.Count != 10 || w1.Min != 10 || w1.Max != 19 || !approx(w1.Mean, 14.5, 1e-12) {
		t.Errorf("window 1 = %+v", w1)
	}
	// Std of 0..9 is sqrt(8.25) ≈ 2.8723.
	if !approx(w0.Std, math.Sqrt(8.25), 1e-12) {
		t.Errorf("window 0 std = %v", w0.Std)
	}
}

func TestCoarsenAlignment(t *testing.T) {
	// Samples at t=1004..1015 must split at the aligned boundary 1010,
	// not at the first-seen timestamp.
	var samples []Sample
	for i := int64(1004); i < 1016; i++ {
		samples = append(samples, Sample{T: i, V: 1})
	}
	ws := Coarsen(samples, 10)
	if len(ws) != 2 {
		t.Fatalf("got %d windows, want 2", len(ws))
	}
	if ws[0].T != 1000 || ws[0].Count != 6 {
		t.Errorf("window 0 = %+v, want T=1000 Count=6", ws[0])
	}
	if ws[1].T != 1010 || ws[1].Count != 6 {
		t.Errorf("window 1 = %+v, want T=1010 Count=6", ws[1])
	}
}

func TestCoarsenGapsSkipEmptyWindows(t *testing.T) {
	samples := []Sample{{T: 0, V: 1}, {T: 35, V: 2}}
	ws := Coarsen(samples, 10)
	if len(ws) != 2 {
		t.Fatalf("got %d windows, want 2 (empty windows skipped)", len(ws))
	}
	if ws[0].T != 0 || ws[1].T != 30 {
		t.Errorf("window starts = %d, %d", ws[0].T, ws[1].T)
	}
}

func TestCoarsenLateSamplesTolerated(t *testing.T) {
	// A sample arriving with a timestamp before the current window is
	// folded into the current window (telemetry reordering tolerance).
	var got []WindowStat
	c := NewCoarsener(10, func(w WindowStat) { got = append(got, w) })
	c.Add(100, 1)
	c.Add(112, 2)
	c.Add(109, 3) // late: belongs to the 100 window but 110 already open
	c.Flush()
	if len(got) != 2 {
		t.Fatalf("got %d windows", len(got))
	}
	if got[1].Count != 2 {
		t.Errorf("late sample not folded into open window: %+v", got[1])
	}
}

func TestCoarsenNegativeTimes(t *testing.T) {
	ws := Coarsen([]Sample{{T: -15, V: 1}, {T: -11, V: 2}, {T: -5, V: 3}}, 10)
	if len(ws) != 2 {
		t.Fatalf("got %d windows, want 2", len(ws))
	}
	if ws[0].T != -20 || ws[1].T != -10 {
		t.Errorf("window starts = %d, %d, want -20, -10", ws[0].T, ws[1].T)
	}
}

func TestModFloorsTowardNegativeInfinity(t *testing.T) {
	// mod is the window-alignment primitive: it must return a value in
	// [0, b) for any sign of a, so negative timestamps floor-align instead
	// of truncating toward zero like Go's % operator.
	cases := []struct{ a, b, want int64 }{
		{0, 10, 0},
		{7, 10, 7},
		{10, 10, 0},
		{-1, 10, 9},
		{-10, 10, 0},
		{-15, 10, 5},
		{-1, 86400, 86399},
		{math.MaxInt64, 3, math.MaxInt64 % 3},
	}
	for _, c := range cases {
		if got := mod(c.a, c.b); got != c.want {
			t.Errorf("mod(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCoarsenerFlushEmpty(t *testing.T) {
	// Flush with nothing pending must not emit, and flushing twice after a
	// sample must emit exactly once.
	emitted := 0
	c := NewCoarsener(10, func(WindowStat) { emitted++ })
	c.Flush()
	if emitted != 0 {
		t.Fatalf("empty flush emitted %d windows", emitted)
	}
	c.Add(5, 1.0)
	c.Flush()
	c.Flush()
	if emitted != 1 {
		t.Errorf("flush after one sample emitted %d windows, want 1", emitted)
	}
}

func TestCoarsenerOutOfOrderWithinWindow(t *testing.T) {
	// Reordering WITHIN one window must not split it or change its stats.
	ordered := Coarsen([]Sample{{T: 100, V: 1}, {T: 103, V: 5}, {T: 107, V: 3}}, 10)
	shuffled := Coarsen([]Sample{{T: 107, V: 3}, {T: 100, V: 1}, {T: 103, V: 5}}, 10)
	if len(ordered) != 1 || len(shuffled) != 1 {
		t.Fatalf("windows = %d ordered, %d shuffled, want 1 each", len(ordered), len(shuffled))
	}
	a, b := ordered[0], shuffled[0]
	if a.T != b.T || a.Count != b.Count || a.Min != b.Min || a.Max != b.Max ||
		!approx(a.Mean, b.Mean, 1e-12) || !approx(a.Std, b.Std, 1e-12) {
		t.Errorf("ordered %+v != shuffled %+v", a, b)
	}
}

func TestCoarsenerDuplicateTimestamps(t *testing.T) {
	// Duplicate timestamps are distinct observations (the BMC can report
	// twice in one second): each must count, in order, into the same
	// window — never deduplicated, never split.
	var got []WindowStat
	c := NewCoarsener(10, func(w WindowStat) { got = append(got, w) })
	c.Add(100, 1)
	c.Add(100, 3)
	c.Add(100, 3)
	c.Add(105, 5)
	c.Flush()
	if len(got) != 1 {
		t.Fatalf("got %d windows, want 1", len(got))
	}
	w := got[0]
	if w.Count != 4 || w.Min != 1 || w.Max != 5 || !approx(w.Mean, 3, 1e-12) {
		t.Errorf("duplicates mishandled: %+v", w)
	}
}

func TestCoarsenerDuplicateTimestampAfterWindowAdvance(t *testing.T) {
	// A duplicate of an already-flushed timestamp is folded into the
	// current window (same rule as any late sample), not silently dropped
	// and not retroactively merged into the closed window.
	var got []WindowStat
	c := NewCoarsener(10, func(w WindowStat) { got = append(got, w) })
	c.Add(100, 1)
	c.Add(112, 2)
	c.Add(100, 9) // duplicate of the first, after window 100 closed
	c.Flush()
	if len(got) != 2 {
		t.Fatalf("got %d windows, want 2", len(got))
	}
	if got[0].Count != 1 || got[0].Max != 1 {
		t.Errorf("closed window mutated: %+v", got[0])
	}
	if got[1].Count != 2 || got[1].Max != 9 {
		t.Errorf("late duplicate not folded into open window: %+v", got[1])
	}
}

func TestCoarsenerBackwardsAcrossManyWindows(t *testing.T) {
	// A sample arbitrarily far in the past still folds into the current
	// window: the batch coarsener has no lateness bound, it trusts the
	// feeder's ordering. (The streaming plane's event-time coarsener makes
	// the opposite choice — bounded lateness with counted drops — and
	// documents the divergence; this pins the batch side of the contract.)
	var got []WindowStat
	c := NewCoarsener(10, func(w WindowStat) { got = append(got, w) })
	c.Add(1000, 1)
	c.Add(5, 2) // ~100 windows in the past
	c.Flush()
	if len(got) != 1 {
		t.Fatalf("got %d windows, want 1", len(got))
	}
	if got[0].T != 1000 || got[0].Count != 2 {
		t.Errorf("ancient sample not folded: %+v", got[0])
	}
}

func TestCoarsenMatchesStreamingCoarsener(t *testing.T) {
	// The batch helper and a hand-driven streaming Coarsener must agree
	// window for window on the same input.
	var samples []Sample
	for i := 0; i < 500; i++ {
		samples = append(samples, Sample{
			T: int64(i*7) - 1000, // crosses zero; irregular spacing vs window
			V: math.Sin(float64(i) / 9),
		})
	}
	batch := Coarsen(samples, 60)
	var streamed []WindowStat
	c := NewCoarsener(60, func(w WindowStat) { streamed = append(streamed, w) })
	for _, s := range samples {
		c.Add(s.T, s.V)
	}
	c.Flush()
	if len(batch) != len(streamed) {
		t.Fatalf("batch %d windows, streamed %d", len(batch), len(streamed))
	}
	for i := range batch {
		if batch[i] != streamed[i] {
			t.Errorf("window %d: batch %+v, streamed %+v", i, batch[i], streamed[i])
		}
	}
}

func TestCoarsenerPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewCoarsener(0, func(WindowStat) {}) },
		func() { NewCoarsener(10, nil) },
	} {
		fn := fn
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCoarsenInvariantsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		samples := make([]Sample, 0, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			samples = append(samples, Sample{T: int64(i), V: math.Mod(v, 1e6)})
		}
		total := int64(0)
		for _, w := range Coarsen(samples, 10) {
			if !(w.Min <= w.Mean && w.Mean <= w.Max) || w.Std < 0 || w.Count <= 0 {
				return false
			}
			if mod(w.T, 10) != 0 {
				return false
			}
			total += w.Count
		}
		return total == int64(len(samples))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSeriesBasics(t *testing.T) {
	s := NewSeries(100, 10, 5)
	if s.Len() != 5 || s.End() != 150 {
		t.Fatalf("len/end = %d/%d", s.Len(), s.End())
	}
	if !s.Set(120, 7) {
		t.Fatal("Set in range failed")
	}
	if s.Set(150, 1) || s.Set(99, 1) {
		t.Error("Set out of range succeeded")
	}
	if s.At(120) != 7 {
		t.Errorf("At(120) = %v", s.At(120))
	}
	if !math.IsNaN(s.At(110)) || !math.IsNaN(s.At(0)) {
		t.Error("unset/out-of-range must be NaN")
	}
	if s.TimeAt(3) != 130 {
		t.Errorf("TimeAt(3) = %d", s.TimeAt(3))
	}
}

func TestSeriesSlice(t *testing.T) {
	s := NewSeries(0, 10, 10)
	for i := 0; i < 10; i++ {
		s.Vals[i] = float64(i)
	}
	sub := s.Slice(25, 55)
	if sub.Start != 20 || sub.Len() != 4 {
		t.Fatalf("slice start/len = %d/%d, want 20/4", sub.Start, sub.Len())
	}
	if sub.Vals[0] != 2 || sub.Vals[3] != 5 {
		t.Errorf("slice vals = %v", sub.Vals)
	}
	// Clamping.
	if got := s.Slice(-100, 5); got.Len() != 1 {
		t.Errorf("clamped slice len = %d", got.Len())
	}
	if got := s.Slice(95, 10000); got.Len() != 1 {
		t.Errorf("tail slice len = %d", got.Len())
	}
	if got := s.Slice(60, 40); got.Len() != 0 {
		t.Errorf("inverted slice len = %d", got.Len())
	}
}

func TestSeriesIntegrate(t *testing.T) {
	s := NewSeries(0, 10, 3)
	s.Vals[0], s.Vals[2] = 100, 200 // middle NaN skipped
	if got := s.Integrate(); got != 3000 {
		t.Errorf("integral = %v, want 3000", got)
	}
}

func TestSeriesCleanAndStats(t *testing.T) {
	s := NewSeries(0, 1, 4)
	s.Vals[1], s.Vals[3] = 2, 4
	clean := s.Clean()
	if len(clean) != 2 || clean[0] != 2 || clean[1] != 4 {
		t.Errorf("clean = %v", clean)
	}
	if m := s.Stats(); m.N != 2 || m.Mean() != 3 {
		t.Errorf("stats = %+v", m)
	}
}

func TestFromWindows(t *testing.T) {
	ws := []WindowStat{{T: 10, Mean: 5}, {T: 30, Mean: 7}}
	s := FromWindows(ws, 0, 40, 10)
	if s.Len() != 4 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.At(10) != 5 || s.At(30) != 7 {
		t.Errorf("values not placed: %v", s.Vals)
	}
	if !math.IsNaN(s.At(0)) || !math.IsNaN(s.At(20)) {
		t.Error("gaps must stay NaN")
	}
}

func TestCombine(t *testing.T) {
	a := NewSeries(0, 10, 3)
	b := NewSeries(0, 10, 3)
	a.Vals = []float64{1, 2, math.NaN()}
	b.Vals = []float64{3, math.NaN(), math.NaN()}
	sum, err := Combine(AggSum, []*Series{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Vals[0] != 4 || sum.Vals[1] != 2 || !math.IsNaN(sum.Vals[2]) {
		t.Errorf("sum = %v", sum.Vals)
	}
	mean, _ := Combine(AggMean, []*Series{a, b})
	if mean.Vals[0] != 2 || mean.Vals[1] != 2 {
		t.Errorf("mean = %v", mean.Vals)
	}
	max, _ := Combine(AggMax, []*Series{a, b})
	if max.Vals[0] != 3 {
		t.Errorf("max = %v", max.Vals)
	}
	min, _ := Combine(AggMin, []*Series{a, b})
	if min.Vals[0] != 1 {
		t.Errorf("min = %v", min.Vals)
	}
	cnt, _ := Combine(AggCount, []*Series{a, b})
	if cnt.Vals[0] != 2 || cnt.Vals[1] != 1 || cnt.Vals[2] != 0 {
		t.Errorf("count = %v", cnt.Vals)
	}
}

func TestCombineErrors(t *testing.T) {
	if _, err := Combine(AggSum, nil); err == nil {
		t.Error("empty combine must error")
	}
	a := NewSeries(0, 10, 3)
	b := NewSeries(5, 10, 3)
	if _, err := Combine(AggSum, []*Series{a, b}); err == nil {
		t.Error("misaligned start must error")
	}
	c := NewSeries(0, 5, 3)
	if _, err := Combine(AggSum, []*Series{a, c}); err == nil {
		t.Error("misaligned step must error")
	}
	d := NewSeries(0, 10, 4)
	if _, err := Combine(AggSum, []*Series{a, d}); err == nil {
		t.Error("misaligned length must error")
	}
}

func TestDownsample(t *testing.T) {
	s := NewSeries(0, 10, 6)
	s.Vals = []float64{1, 3, math.NaN(), 5, 7, 9}
	d := s.Downsample(2)
	if d.Step != 20 || d.Len() != 3 {
		t.Fatalf("step/len = %d/%d", d.Step, d.Len())
	}
	if d.Vals[0] != 2 || d.Vals[1] != 5 || d.Vals[2] != 8 {
		t.Errorf("downsample = %v", d.Vals)
	}
	// Factor <= 1 returns an independent copy.
	cp := s.Downsample(1)
	cp.Vals[0] = 99
	if s.Vals[0] == 99 {
		t.Error("Downsample(1) shares storage")
	}
}

func TestCombinePreservesSumProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		// Distribute values across 3 series, then Combine(AggSum) and
		// compare with the direct total per slot.
		n := 4
		series := []*Series{NewSeries(0, 1, n), NewSeries(0, 1, n), NewSeries(0, 1, n)}
		totals := make([]float64, n)
		counts := make([]int, n)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			v = math.Mod(v, 1e6)
			slot := i % n
			series[i%3].Vals[slot] = v // overwrite semantics
		}
		for slot := 0; slot < n; slot++ {
			for _, s := range series {
				if !math.IsNaN(s.Vals[slot]) {
					totals[slot] += s.Vals[slot]
					counts[slot]++
				}
			}
		}
		sum, err := Combine(AggSum, series)
		if err != nil {
			return false
		}
		for slot := 0; slot < n; slot++ {
			if counts[slot] == 0 {
				if !math.IsNaN(sum.Vals[slot]) {
					return false
				}
				continue
			}
			if !approx(sum.Vals[slot], totals[slot], 1e-9*math.Max(1, math.Abs(totals[slot]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCoarsen(b *testing.B) {
	samples := make([]Sample, 86400)
	for i := range samples {
		samples[i] = Sample{T: int64(i), V: float64(i % 2300)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Coarsen(samples, 10)
	}
}
