// Package stream is the online streaming-analysis plane of the
// reproduction: it consumes telemetry.Sample batches as they arrive from
// the out-of-band transport and maintains, incrementally, the statistics
// the paper computes over finished runs — per-channel windowed coarsening
// (§3), fleet/cabinet/MSB power rollups, streaming edge detection (§4),
// rolling thermal-band classification (§2), and early-warning lift
// statistics over the failure feed (§6.1).
//
// Architecture: Ingest splits each batch across per-shard goroutines over
// bounded queues — a full queue drops the batch and counts it rather than
// ever stalling the out-of-band path. Each shard coarsens its channels
// with event-time windows and a bounded-lateness watermark (samples more
// than LatenessSec behind a shard's newest timestamp are dropped and
// counted). A single merge goroutine orders the shards' finalized windows
// by the minimum shard watermark into system-wide frames and applies the
// operator chain to each, so every operator observes windows in strictly
// ascending event time — which is what lets the streaming results match
// the offline batch analyses bit for bit (see parity_test.go).
//
// Snapshot returns a consistent point-in-time copy of all operator state
// under one lock acquisition.
package stream

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/failures"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/tsagg"
	"repro/internal/units"
)

// Config sizes a Pipeline.
type Config struct {
	// Nodes is the system size; node IDs at or beyond it are rejected.
	Nodes int
	// StartTime anchors the window grid and the observation span. Samples
	// before it are rejected. The first frame starts at the first window
	// with data at or after StartTime.
	StartTime int64
	// StepSec is the coarsening window (<= 0: the paper's 10 s).
	StepSec int64
	// MSBs is the switchboard count of the rollup (<= 0: Summit's 5).
	MSBs int
	// Shards is the fan-in parallelism (<= 0: one shard per 288 nodes,
	// the paper's collection-tier ratio).
	Shards int
	// QueueDepth bounds each shard's ingest queue in batches (<= 0: 256).
	// A full queue drops, never blocks.
	QueueDepth int
	// LatenessSec bounds out-of-order tolerance: samples more than this
	// behind their shard's newest timestamp are dropped (<= 0: the
	// paper's 5 s maximum telemetry timestamp delay).
	LatenessSec int64
	// EdgeThresholdW overrides the edge-detection threshold in watts
	// (<= 0: 868 W × Nodes, the paper's per-node definition).
	EdgeThresholdW float64
	// EarlyWarningWindowSec is the §6.1 horizon (<= 0: one hour).
	EarlyWarningWindowSec int64
	// MaxWindows bounds the rollup ring (<= 0: 4096).
	MaxWindows int
	// MaxEdges bounds the retained edge ring (<= 0: 4096).
	MaxEdges int
	// Extra appends additional operators to the built-in chain.
	Extra []Operator
}

func (c Config) withDefaults() Config {
	if c.StepSec <= 0 {
		c.StepSec = units.CoarsenWindowSec
	}
	if c.MSBs <= 0 {
		c.MSBs = 5
	}
	if c.Shards <= 0 {
		c.Shards = (c.Nodes + units.FanInRatio - 1) / units.FanInRatio
		if c.Shards < 1 {
			c.Shards = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.LatenessSec <= 0 {
		c.LatenessSec = int64(units.MaxTimestampDelaySec)
	}
	if c.EarlyWarningWindowSec <= 0 {
		c.EarlyWarningWindowSec = 3600
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = 4096
	}
	if c.MaxEdges <= 0 {
		c.MaxEdges = 4096
	}
	return c
}

func (c Config) edgeThreshold() float64 {
	if c.EdgeThresholdW > 0 {
		return c.EdgeThresholdW
	}
	return float64(units.EdgeThresholdPerNode) * float64(c.Nodes)
}

// nodeStat is one node's finalized power window inside a shard message.
type nodeStat struct {
	node int32
	stat tsagg.WindowStat
}

// shardWindow is one finalized window of one shard.
type shardWindow struct {
	start       int64
	power       []nodeStat
	bands       [core.NumTempBands]int64
	chanWindows int64
}

// mergeMsg carries a shard's finalized windows and watermark advance.
type mergeMsg struct {
	shard     int
	watermark int64
	windows   []shardWindow
}

// shard is one ingest partition: a bounded queue drained by a goroutine
// that owns the per-channel coarseners.
type shard struct {
	id    int
	ch    chan []telemetry.Sample
	chans map[uint32]*WindowCoarsener
	// watermark = newest sample time − lateness; lastBoundary is the
	// highest window boundary already scanned for finalization.
	watermark    int64
	lastBoundary int64
}

// Pipeline is the live streaming-analysis plane. Create with NewPipeline;
// feed with Ingest (telemetry) and IngestEvents (failures); read with
// Snapshot; Close flushes every open window through the operators.
type Pipeline struct {
	cfg Config

	ingestMu sync.RWMutex // guards shard channels against Close
	closed   atomic.Bool

	shards  []*shard
	active  []atomic.Bool // shard has ever accepted a batch
	mergeCh chan mergeMsg
	wg      sync.WaitGroup
	mergeWG sync.WaitGroup

	// Counters (atomic: read by Snapshot and health without the lock).
	received    atomic.Int64 // samples presented to Ingest
	dropped     atomic.Int64 // samples dropped on full shard queues
	rejected    atomic.Int64 // samples with out-of-range node or time
	late        atomic.Int64 // samples behind the lateness bound
	mergeLate   atomic.Int64 // shard windows arriving behind the merge cursor
	events      atomic.Int64 // failure events observed
	frames      atomic.Int64 // frames applied to the operator chain
	chanWindows atomic.Int64 // per-channel windows finalized
	wmark       atomic.Int64 // global watermark (min over active shards)

	// mu guards the operator chain and the merge cursor: Apply runs under
	// it, so Snapshot sees every operator at the same frame boundary.
	mu         sync.Mutex
	lastWindow int64 // start of the newest applied frame
	anyFrame   bool
	rollup     *Rollup
	edges      *Edges
	bands      *Bands
	warn       *EarlyWarning
	ops        []Operator
}

// NewPipeline validates cfg, applies defaults, and starts the shard and
// merge goroutines.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("stream: non-positive node count %d", cfg.Nodes)
	}
	cfg = cfg.withDefaults()
	p := &Pipeline{
		cfg:        cfg,
		active:     make([]atomic.Bool, cfg.Shards),
		mergeCh:    make(chan mergeMsg, cfg.Shards*4),
		lastWindow: alignWindow(cfg.StartTime, cfg.StepSec) - cfg.StepSec,
	}
	p.wmark.Store(math.MinInt64)
	p.rollup = newRollup(cfg)
	p.edges = newEdges(cfg)
	p.bands = newBands(cfg)
	p.warn = newEarlyWarning(cfg)
	p.ops = append([]Operator{p.rollup, p.edges, p.bands, p.warn}, cfg.Extra...)
	for i := 0; i < cfg.Shards; i++ {
		s := &shard{
			id:           i,
			ch:           make(chan []telemetry.Sample, cfg.QueueDepth),
			chans:        map[uint32]*WindowCoarsener{},
			watermark:    math.MinInt64,
			lastBoundary: math.MinInt64,
		}
		p.shards = append(p.shards, s)
		p.wg.Add(1)
		go p.runShard(s)
	}
	p.mergeWG.Add(1)
	go p.runMerge()
	return p, nil
}

// shardOf partitions nodes over shards.
func (p *Pipeline) shardOf(n topology.NodeID) int { return int(n) % len(p.shards) }

// Ingest feeds one telemetry batch. It never blocks: each shard's slice
// is enqueued with a non-blocking send, and a full queue drops the slice
// and counts it — the out-of-band path must not stall (paper §2). The
// batch is not retained; samples are copied into fresh per-shard slices.
func (p *Pipeline) Ingest(batch []telemetry.Sample) {
	if len(batch) == 0 {
		return
	}
	p.received.Add(int64(len(batch)))
	if p.closed.Load() {
		p.dropped.Add(int64(len(batch)))
		return
	}
	per := make([][]telemetry.Sample, len(p.shards))
	grid := alignWindow(p.cfg.StartTime, p.cfg.StepSec)
	for _, s := range batch {
		if int(s.Node) < 0 || int(s.Node) >= p.cfg.Nodes || s.T < grid {
			p.rejected.Add(1)
			continue
		}
		i := p.shardOf(s.Node)
		per[i] = append(per[i], s)
	}
	p.ingestMu.RLock()
	defer p.ingestMu.RUnlock()
	if p.closed.Load() {
		for _, sub := range per {
			p.dropped.Add(int64(len(sub)))
		}
		return
	}
	for i, sub := range per {
		if len(sub) == 0 {
			continue
		}
		select {
		case p.shards[i].ch <- sub:
			p.active[i].Store(true)
		default:
			p.dropped.Add(int64(len(sub)))
		}
	}
}

// IngestEvents feeds failure events to the early-warning operator. The
// batch is sorted by time (stably, preserving log order on ties) before
// observation; across batches the caller must not go backwards in time
// further than the early-warning horizon cares about.
func (p *Pipeline) IngestEvents(evs []failures.Event) {
	if len(evs) == 0 {
		return
	}
	ordered := append([]failures.Event(nil), evs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Time < ordered[j].Time })
	p.events.Add(int64(len(ordered)))
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range ordered {
		p.warn.observe(&ordered[i])
	}
}

// runShard drains one shard queue: coarsen per channel, advance the
// watermark, and ship finalized windows to the merger. The blocking send
// to mergeCh is safe: the merger drains until every shard exits.
func (p *Pipeline) runShard(s *shard) {
	defer p.wg.Done()
	step := p.cfg.StepSec
	for batch := range s.ch {
		maxT := int64(math.MinInt64)
		for _, smp := range batch {
			if smp.T > maxT {
				maxT = smp.T
			}
			key := uint32(smp.Node)<<8 | uint32(smp.Metric)
			c := s.chans[key]
			if c == nil {
				c = NewWindowCoarsener(step)
				s.chans[key] = c
			}
			if !c.Add(smp.T, smp.Value) {
				p.late.Add(1)
			}
		}
		if maxT == math.MinInt64 {
			continue
		}
		if wm := maxT - p.cfg.LatenessSec; wm > s.watermark {
			s.watermark = wm
		}
		// Only scan the channel maps when the watermark crosses a window
		// boundary — nothing new can finalize in between.
		if b := alignWindow(s.watermark, step); b > s.lastBoundary {
			s.lastBoundary = b
			p.mergeCh <- p.collectShard(s, s.watermark)
		}
	}
	// Queue closed: flush every open window and release the watermark.
	p.mergeCh <- p.collectShard(s, math.MaxInt64)
}

// collectShard finalizes all shard windows closable at the given
// watermark and packages them, ascending by start, into a merge message.
// Channels are visited in sorted key order — key = node<<8|metric — so the
// message, including the node order of each window's power entries, is
// fully deterministic.
func (p *Pipeline) collectShard(s *shard, end int64) mergeMsg {
	keys := make([]uint32, 0, len(s.chans))
	for key := range s.chans {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	wins := map[int64]*shardWindow{}
	var starts []int64
	for _, key := range keys {
		node := int32(key >> 8)
		metric := telemetry.Metric(key & 0xff)
		s.chans[key].CloseThrough(end, func(ws tsagg.WindowStat) {
			w := wins[ws.T]
			if w == nil {
				w = &shardWindow{start: ws.T}
				wins[ws.T] = w
				starts = append(starts, ws.T)
			}
			w.chanWindows++
			switch {
			case metric == telemetry.MetricInputPower:
				w.power = append(w.power, nodeStat{node: node, stat: ws})
			case metric >= telemetry.MetricGPU0CoreTemp && metric <= telemetry.MetricGPU5CoreTemp:
				if !math.IsNaN(ws.Mean) {
					w.bands[core.TempBandOf(ws.Mean)]++
				}
			}
		})
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	msg := mergeMsg{shard: s.id, watermark: end}
	if end != math.MaxInt64 {
		msg.watermark = s.watermark
	}
	for _, t := range starts {
		msg.windows = append(msg.windows, *wins[t])
	}
	return msg
}

// mergeWin accumulates shard contributions to one pending frame.
type mergeWin struct {
	power       []nodeStat
	bands       [core.NumTempBands]int64
	chanWindows int64
}

// runMerge is the single consumer of shard output: it orders finalized
// windows behind the minimum active-shard watermark and applies complete
// frames, in ascending event time, to the operator chain.
func (p *Pipeline) runMerge() {
	defer p.mergeWG.Done()
	nShards := len(p.shards)
	shardWM := make([]int64, nShards)
	for i := range shardWM {
		shardWM[i] = math.MinInt64
	}
	pending := map[int64]*mergeWin{}
	maxSeen := int64(math.MinInt64)
	step := p.cfg.StepSec
	nextEmit := alignWindow(p.cfg.StartTime, step)
	frame := &Frame{Step: step, NodePower: make([]tsagg.WindowStat, p.cfg.Nodes)}
	for msg := range p.mergeCh {
		if msg.watermark > shardWM[msg.shard] {
			shardWM[msg.shard] = msg.watermark
		}
		for i := range msg.windows {
			w := &msg.windows[i]
			if w.start < nextEmit {
				// Behind the merge cursor: the frame already shipped
				// (possible only for a shard activated after others had
				// advanced the cursor).
				p.mergeLate.Add(w.chanWindows)
				continue
			}
			mw := pending[w.start]
			if mw == nil {
				mw = &mergeWin{}
				pending[w.start] = mw
			}
			mw.power = append(mw.power, w.power...)
			for b := range w.bands {
				mw.bands[b] += w.bands[b]
			}
			mw.chanWindows += w.chanWindows
			if w.start > maxSeen {
				maxSeen = w.start
			}
		}
		// Global watermark: the minimum over shards that have ever
		// accepted data. Shards that never saw a sample do not hold the
		// pipeline back; their late activation is counted above.
		g := int64(math.MaxInt64)
		activeAny := false
		for i := 0; i < nShards; i++ {
			if !p.active[i].Load() && shardWM[i] == math.MinInt64 {
				continue
			}
			activeAny = true
			if shardWM[i] < g {
				g = shardWM[i]
			}
		}
		if !activeAny || g == math.MinInt64 {
			continue
		}
		if g != math.MaxInt64 {
			p.wmark.Store(g)
		}
		// Before the first frame, fast-forward to the first data so a
		// live feed anchored far from StartTime does not emit years of
		// empty frames. p.anyFrame is only written by this goroutine.
		if !p.anyFrame && len(pending) > 0 {
			first := int64(math.MaxInt64)
			for t := range pending {
				if t < first {
					first = t
				}
			}
			if first > nextEmit {
				nextEmit = first
			}
		}
		for nextEmit+step <= g && nextEmit <= maxSeen {
			p.applyFrame(frame, pending, nextEmit)
			delete(pending, nextEmit)
			nextEmit += step
		}
	}
	// All shards flushed with watermark MaxInt64, so the loop above has
	// emitted everything; run the operators' end-of-stream hooks.
	p.mu.Lock()
	for _, op := range p.ops {
		op.Flush()
	}
	p.mu.Unlock()
}

// applyFrame builds the frame for window start (empty when no shard
// contributed) and applies the operator chain under the snapshot lock.
func (p *Pipeline) applyFrame(frame *Frame, pending map[int64]*mergeWin, start int64) {
	for i := range frame.NodePower {
		frame.NodePower[i] = tsagg.WindowStat{}
	}
	frame.BandGPUs = [core.NumTempBands]int64{}
	frame.Start = start
	frame.Observed = 0
	if mw := pending[start]; mw != nil {
		for _, ns := range mw.power {
			if int(ns.node) < len(frame.NodePower) && ns.stat.Count > 0 {
				frame.NodePower[ns.node] = ns.stat
				frame.Observed++
			}
		}
		frame.BandGPUs = mw.bands
		p.chanWindows.Add(mw.chanWindows)
	}
	p.mu.Lock()
	for _, op := range p.ops {
		op.Apply(frame)
	}
	p.lastWindow = start
	p.anyFrame = true
	p.mu.Unlock()
	p.frames.Add(1)
}

// Close stops ingestion, flushes every open window through the operator
// chain, and waits for the shard and merge goroutines. Idempotent.
// Samples offered to Ingest after Close are counted as dropped.
func (p *Pipeline) Close() {
	p.ingestMu.Lock()
	if p.closed.Swap(true) {
		p.ingestMu.Unlock()
		return
	}
	for _, s := range p.shards {
		close(s.ch)
	}
	p.ingestMu.Unlock()
	p.wg.Wait()
	close(p.mergeCh)
	p.mergeWG.Wait()
}

// IngestStats is the counter block of a snapshot.
type IngestStats struct {
	Received       int64 // samples presented to Ingest
	Dropped        int64 // dropped on full queues or after Close
	Rejected       int64 // out-of-range node or pre-StartTime timestamp
	Late           int64 // behind the lateness bound at a shard
	MergeLate      int64 // shard windows behind the merge cursor
	Events         int64 // failure events observed
	Frames         int64 // frames applied to the operator chain
	ChannelWindows int64 // per-channel windows finalized
}

// ShardStat reports one shard queue's occupancy.
type ShardStat struct {
	QueueLen int
	QueueCap int
}

// Snapshot is a consistent point-in-time view of the pipeline.
type Snapshot struct {
	Ingest IngestStats
	// WatermarkT is the global event-time watermark; math.MinInt64 before
	// any data.
	WatermarkT int64
	// LastWindowT is the start of the newest applied frame.
	LastWindowT int64
	// SpanSec is the finalized observation span from StartTime.
	SpanSec      int64
	Shards       []ShardStat
	Rollup       RollupSnapshot
	Edges        []core.Edge
	EdgesTotal   int64
	EdgeThreshW  float64
	Bands        BandsSnapshot
	EarlyWarning []core.PrecursorStats
}

// Snapshot returns a consistent copy of all operator state: every
// included result reflects the same final applied frame.
func (p *Pipeline) Snapshot() *Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snapshotLocked()
}

func (p *Pipeline) snapshotLocked() *Snapshot {
	s := &Snapshot{
		Ingest:      p.ingestStats(),
		WatermarkT:  p.wmark.Load(),
		LastWindowT: p.lastWindow,
		SpanSec:     p.spanLocked(),
		Rollup:      p.rollup.snapshotLocked(0),
		EdgeThreshW: p.edges.Threshold(),
		Bands:       p.bands.snapshotLocked(),
	}
	s.Edges, s.EdgesTotal = p.edges.snapshotLocked(0)
	s.EarlyWarning = p.warn.snapshotLocked(s.SpanSec)
	for _, sh := range p.shards {
		s.Shards = append(s.Shards, ShardStat{QueueLen: len(sh.ch), QueueCap: cap(sh.ch)})
	}
	return s
}

func (p *Pipeline) ingestStats() IngestStats {
	return IngestStats{
		Received:       p.received.Load(),
		Dropped:        p.dropped.Load(),
		Rejected:       p.rejected.Load(),
		Late:           p.late.Load(),
		MergeLate:      p.mergeLate.Load(),
		Events:         p.events.Load(),
		Frames:         p.frames.Load(),
		ChannelWindows: p.chanWindows.Load(),
	}
}

// spanLocked is the finalized observation span: frames applied × step.
func (p *Pipeline) spanLocked() int64 {
	if !p.anyFrame {
		return 0
	}
	return p.lastWindow + p.cfg.StepSec - alignWindow(p.cfg.StartTime, p.cfg.StepSec)
}

// RollupSnapshot copies the rollup state with up to limit recent windows
// (limit <= 0: all retained).
func (p *Pipeline) RollupSnapshot(limit int) RollupSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rollup.snapshotLocked(limit)
}

// EdgesSnapshot copies up to limit recent edges (limit <= 0: all
// retained) plus the lifetime edge count and the detection threshold.
func (p *Pipeline) EdgesSnapshot(limit int) (edges []core.Edge, total int64, thresholdW float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	edges, total = p.edges.snapshotLocked(limit)
	return edges, total, p.edges.Threshold()
}

// BandsSnapshot copies the thermal-band state.
func (p *Pipeline) BandsSnapshot() BandsSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bands.snapshotLocked()
}

// EarlyWarningSnapshot reduces the live early-warning state over the
// finalized span.
func (p *Pipeline) EarlyWarningSnapshot() []core.PrecursorStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.warn.snapshotLocked(p.spanLocked())
}

// HealthState summarizes liveness for /api/v1/live/health.
type HealthState struct {
	// Status is "ok" until any sample has been dropped or lost, then
	// "degraded" — sticky, because the counters never reset.
	Status      string
	Reasons     []string
	Ingest      IngestStats
	WatermarkT  int64
	LastWindowT int64
	Shards      []ShardStat
}

// Health reports ingest health without touching the operator lock beyond
// the last-window read, so it stays cheap under load.
func (p *Pipeline) Health() HealthState {
	st := p.ingestStats()
	h := HealthState{
		Status:     "ok",
		Ingest:     st,
		WatermarkT: p.wmark.Load(),
	}
	p.mu.Lock()
	h.LastWindowT = p.lastWindow
	p.mu.Unlock()
	for _, sh := range p.shards {
		h.Shards = append(h.Shards, ShardStat{QueueLen: len(sh.ch), QueueCap: cap(sh.ch)})
	}
	if st.Dropped > 0 {
		h.Reasons = append(h.Reasons, "ingest queue overflow dropped samples")
	}
	if st.Late > 0 {
		h.Reasons = append(h.Reasons, "samples beyond the lateness bound were dropped")
	}
	if st.MergeLate > 0 {
		h.Reasons = append(h.Reasons, "windows finalized before a late shard contributed")
	}
	if len(h.Reasons) > 0 {
		h.Status = "degraded"
	}
	return h
}
