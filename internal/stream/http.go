package stream

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/topology"
)

// ServeConfig bounds the live HTTP serving layer, mirroring the queryd
// discipline: GET-only routes behind a concurrency limiter, a per-request
// deadline, and request-size limits. Health stays outside the limiter so
// an overloaded service can still report that it is overloaded.
type ServeConfig struct {
	// Timeout is the per-request deadline (<= 0: 10 s).
	Timeout time.Duration
	// MaxConcurrent bounds in-flight requests; excess requests are shed
	// with 503 (<= 0: 32).
	MaxConcurrent int
	// MaxWindows bounds the windows one rollup response may carry
	// (<= 0: 4096).
	MaxWindows int
	// MaxQueryLen bounds the raw query string (<= 0: 4096).
	MaxQueryLen int
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 32
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = 4096
	}
	if c.MaxQueryLen <= 0 {
		c.MaxQueryLen = 4096
	}
	return c
}

// handler serves the live JSON API over a Pipeline.
type handler struct {
	p   *Pipeline
	cfg ServeConfig
	sem chan struct{}
}

// NewHandler returns the streamd HTTP API:
//
//	GET /api/v1/live/rollup        — fleet/cabinet/MSB power windows
//	GET /api/v1/live/edges         — detected power edges
//	GET /api/v1/live/bands         — thermal-band histogram + occupancy
//	GET /api/v1/live/earlywarning  — precursor→outcome lift statistics
//	GET /api/v1/live/health        — ingest counters, watermark, degradation
//	GET /healthz                   — liveness
//
// API routes run under the concurrency limiter and per-request timeout of
// cfg; the health routes bypass both.
func NewHandler(p *Pipeline, cfg ServeConfig) http.Handler {
	h := &handler{p: p, cfg: cfg.withDefaults()}
	h.sem = make(chan struct{}, h.cfg.MaxConcurrent)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/api/v1/live/health", h.health)
	mux.HandleFunc("/api/v1/live/rollup", h.guard(h.rollup))
	mux.HandleFunc("/api/v1/live/edges", h.guard(h.edges))
	mux.HandleFunc("/api/v1/live/bands", h.guard(h.bands))
	mux.HandleFunc("/api/v1/live/earlywarning", h.guard(h.earlyWarning))
	return mux
}

type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

// guard wraps an API route with method/size checks, load shedding and the
// per-request timeout.
func (h *handler) guard(fn func(ctx context.Context, r *http.Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		if len(r.URL.RawQuery) > h.cfg.MaxQueryLen {
			writeError(w, http.StatusRequestURITooLong,
				fmt.Sprintf("query string over %d bytes", h.cfg.MaxQueryLen))
			return
		}
		select {
		case h.sem <- struct{}{}:
			defer func() { <-h.sem }()
		default:
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "live query concurrency limit reached")
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), h.cfg.Timeout)
		defer cancel()
		resp, err := fn(ctx, r)
		if err != nil {
			status, msg := errStatus(err)
			writeError(w, status, msg)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

func errStatus(err error) (int, string) {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return ae.status, ae.msg
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "live query deadline exceeded"
	default:
		return http.StatusInternalServerError, err.Error()
	}
}

// jfloat marshals NaN/Inf (legal in the pipeline, illegal in JSON) as null.
type jfloat float64

func (f jfloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

type apiPoint struct {
	T int64  `json:"t"`
	V jfloat `json:"v"`
}

// --- /api/v1/live/rollup ---

type apiGroupSeries struct {
	Group  int        `json:"group"`
	Label  string     `json:"label"`
	Points []apiPoint `json:"points"`
}

type apiRollup struct {
	Group   string           `json:"group"`
	Step    int64            `json:"step"`
	Windows int64            `json:"windows_total"`
	EnergyJ jfloat           `json:"energy_j"`
	Points  []apiPoint       `json:"points,omitempty"`
	Series  []apiGroupSeries `json:"series,omitempty"`
}

func (h *handler) rollup(ctx context.Context, r *http.Request) (any, error) {
	q := r.URL.Query()
	group := q.Get("group")
	if group == "" {
		group = "fleet"
	}
	limit, err := qInt(q.Get("limit"), 360)
	if err != nil {
		return nil, err
	}
	if limit <= 0 || limit > int64(h.cfg.MaxWindows) {
		limit = int64(h.cfg.MaxWindows)
	}
	snap := h.p.RollupSnapshot(int(limit))
	out := &apiRollup{Group: group, Step: snap.Step, Windows: snap.Windows, EnergyJ: jfloat(snap.EnergyJ)}
	switch group {
	case "fleet":
		for _, w := range snap.Recent {
			out.Points = append(out.Points, apiPoint{T: w.T, V: jfloat(w.FleetW)})
		}
	case "cabinet":
		out.Series = groupSeries(snap.Recent, snap.Cabinets,
			func(w *RollupWindow, g int) float64 { return w.CabinetW[g] },
			func(g int) string { return fmt.Sprintf("cabinet %d", g) })
	case "msb":
		out.Series = groupSeries(snap.Recent, snap.MSBs,
			func(w *RollupWindow, g int) float64 { return w.MSBW[g] },
			func(g int) string { return topology.MSB(g).String() })
	default:
		return nil, &apiError{http.StatusBadRequest,
			fmt.Sprintf("unknown group %q (fleet, cabinet, msb)", group)}
	}
	return out, nil
}

func groupSeries(ws []RollupWindow, groups int,
	val func(*RollupWindow, int) float64, label func(int) string) []apiGroupSeries {
	out := make([]apiGroupSeries, groups)
	for g := 0; g < groups; g++ {
		s := apiGroupSeries{Group: g, Label: label(g)}
		for i := range ws {
			s.Points = append(s.Points, apiPoint{T: ws[i].T, V: jfloat(val(&ws[i], g))})
		}
		out[g] = s
	}
	return out
}

// --- /api/v1/live/edges ---

type apiEdge struct {
	T           int64  `json:"t"`
	Rising      bool   `json:"rising"`
	AmplitudeW  jfloat `json:"amplitude_w"`
	DurationSec int64  `json:"duration_sec"`
}

func (h *handler) edges(ctx context.Context, r *http.Request) (any, error) {
	q := r.URL.Query()
	limit, err := qInt(q.Get("limit"), 256)
	if err != nil {
		return nil, err
	}
	edges, total, thresh := h.p.EdgesSnapshot(int(limit))
	rising := q.Get("rising")
	out := make([]apiEdge, 0, len(edges))
	for _, e := range edges {
		if rising == "true" && !e.Rising || rising == "false" && e.Rising {
			continue
		}
		out = append(out, apiEdge{
			T: e.T, Rising: e.Rising,
			AmplitudeW: jfloat(e.AmplitudeW), DurationSec: e.DurationSec,
		})
	}
	return map[string]any{
		"threshold_w": jfloat(thresh),
		"total":       total,
		"edges":       out,
	}, nil
}

// --- /api/v1/live/bands ---

type apiBand struct {
	Band      int    `json:"band"`
	Label     string `json:"label"`
	GPUs      jfloat `json:"gpus,omitempty"`
	MeanGPUs  jfloat `json:"mean_gpus,omitempty"`
	MaxGPUs   jfloat `json:"max_gpus,omitempty"`
	MeanShare jfloat `json:"mean_share,omitempty"`
}

func (h *handler) bands(ctx context.Context, r *http.Request) (any, error) {
	snap := h.p.BandsSnapshot()
	current := make([]apiBand, 0, len(snap.Summary))
	summary := make([]apiBand, 0, len(snap.Summary))
	for _, b := range snap.Summary {
		current = append(current, apiBand{
			Band: b.Band, Label: b.Label, GPUs: jfloat(snap.Current[b.Band]),
		})
		summary = append(summary, apiBand{
			Band: b.Band, Label: b.Label,
			MeanGPUs: jfloat(b.MeanGPUs), MaxGPUs: jfloat(b.MaxGPUs),
			MeanShare: jfloat(b.MeanShare),
		})
	}
	return map[string]any{
		"t":          snap.T,
		"total_gpus": jfloat(snap.TotalGPUs),
		"windows":    snap.Windows,
		"current":    current,
		"summary":    summary,
	}, nil
}

// --- /api/v1/live/earlywarning ---

type apiPrecursor struct {
	Precursor     string `json:"precursor"`
	Outcome       string `json:"outcome"`
	WindowSec     int64  `json:"window_sec"`
	Precursors    int    `json:"precursors"`
	Followed      int    `json:"followed"`
	HitRate       jfloat `json:"hit_rate"`
	BaseRate      jfloat `json:"base_rate"`
	Lift          jfloat `json:"lift"`
	MedianLeadSec int64  `json:"median_lead_sec"`
}

func (h *handler) earlyWarning(ctx context.Context, r *http.Request) (any, error) {
	stats := h.p.EarlyWarningSnapshot()
	out := make([]apiPrecursor, len(stats))
	for i, st := range stats {
		out[i] = apiPrecursor{
			Precursor: st.Precursor.String(), Outcome: st.Outcome.String(),
			WindowSec: st.WindowSec, Precursors: st.Precursors, Followed: st.Followed,
			HitRate: jfloat(st.HitRate), BaseRate: jfloat(st.BaseRate),
			Lift: jfloat(st.Lift), MedianLeadSec: st.MedianLeadSec,
		}
	}
	return map[string]any{"pairs": out}, nil
}

// --- /api/v1/live/health ---

// health reports ingest counters and degradation without the limiter or
// deadline: the route must answer precisely when the service is swamped.
func (h *handler) health(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	hs := h.p.Health()
	shards := make([]map[string]any, len(hs.Shards))
	for i, sh := range hs.Shards {
		shards[i] = map[string]any{"queue_len": sh.QueueLen, "queue_cap": sh.QueueCap}
	}
	var watermark any
	if hs.WatermarkT != math.MinInt64 {
		watermark = hs.WatermarkT
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":          hs.Status,
		"reasons":         hs.Reasons,
		"received":        hs.Ingest.Received,
		"dropped":         hs.Ingest.Dropped,
		"rejected":        hs.Ingest.Rejected,
		"late":            hs.Ingest.Late,
		"merge_late":      hs.Ingest.MergeLate,
		"events":          hs.Ingest.Events,
		"frames":          hs.Ingest.Frames,
		"channel_windows": hs.Ingest.ChannelWindows,
		"watermark_t":     watermark,
		"last_window_t":   hs.LastWindowT,
		"shards":          shards,
	})
}

// --- helpers ---

func qInt(s string, def int64) (int64, error) {
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, &apiError{http.StatusBadRequest, fmt.Sprintf("bad integer %q", s)}
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
