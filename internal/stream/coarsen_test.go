package stream

import (
	"math"
	"testing"

	"repro/internal/tsagg"
)

// TestWindowCoarsenerParity pins the contract the pipeline's exactness
// rests on: for in-order input the event-time coarsener produces exactly
// the windows of the batch tsagg.Coarsen — same assignment, same
// accumulation order, bit-identical statistics.
func TestWindowCoarsenerParity(t *testing.T) {
	var samples []tsagg.Sample
	for i := 0; i < 137; i++ {
		samples = append(samples, tsagg.Sample{
			T: int64(i), V: 100 + 13*float64(i%7) + 0.1*float64(i),
		})
	}
	want := tsagg.Coarsen(samples, 10)

	c := NewWindowCoarsener(10)
	var got []tsagg.WindowStat
	for _, s := range samples {
		if !c.Add(s.T, s.V) {
			t.Fatalf("in-order sample at t=%d rejected", s.T)
		}
	}
	c.CloseThrough(math.MaxInt64, func(w tsagg.WindowStat) { got = append(got, w) })

	if len(got) != len(want) {
		t.Fatalf("got %d windows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("window %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestWindowCoarsenerOutOfOrder pins the divergence from the batch
// coarsener: a straggler within the open horizon lands in its own window
// (the batch path folds it into whatever window is current), and a
// straggler behind the finalization floor is rejected.
func TestWindowCoarsenerOutOfOrder(t *testing.T) {
	c := NewWindowCoarsener(10)
	for _, ts := range []int64{5, 25, 12} { // 12 arrives after 25
		if !c.Add(ts, float64(ts)) {
			t.Fatalf("sample at t=%d rejected while window open", ts)
		}
	}
	var got []tsagg.WindowStat
	c.CloseThrough(20, func(w tsagg.WindowStat) { got = append(got, w) })
	if len(got) != 2 || got[0].T != 0 || got[1].T != 10 {
		t.Fatalf("expected windows 0 and 10 closed, got %+v", got)
	}
	if got[1].Count != 1 || got[1].Mean != 12 {
		t.Errorf("straggler not in its own window: %+v", got[1])
	}
	// Behind the floor now.
	if c.Add(3, 3) {
		t.Error("sample behind the finalization floor accepted")
	}
	if c.Add(14, 14) {
		t.Error("sample in a closed window accepted")
	}
	if !c.Add(21, 21) {
		t.Error("sample in the open window rejected")
	}
	got = got[:0]
	c.CloseThrough(math.MaxInt64, func(w tsagg.WindowStat) { got = append(got, w) })
	if len(got) != 1 || got[0].T != 20 || got[0].Count != 2 {
		t.Fatalf("flush: got %+v", got)
	}
}

// TestWindowCoarsenerGapWindows verifies windows with no samples are
// simply absent (the merger materializes the grid, not the coarsener).
func TestWindowCoarsenerGapWindows(t *testing.T) {
	c := NewWindowCoarsener(10)
	c.Add(0, 1)
	c.Add(40, 2)
	var starts []int64
	c.CloseThrough(math.MaxInt64, func(w tsagg.WindowStat) { starts = append(starts, w.T) })
	if len(starts) != 2 || starts[0] != 0 || starts[1] != 40 {
		t.Fatalf("got window starts %v, want [0 40]", starts)
	}
	if c.Open() != 0 {
		t.Errorf("open windows after flush: %d", c.Open())
	}
}
