package stream

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/tsagg"
)

// feedDetector runs the incremental detector over a complete series and
// returns the edges in emission order, durations resolved.
func feedDetector(s *tsagg.Series, threshold float64) []core.Edge {
	var out []*core.Edge
	d := NewEdgeDetector(threshold, func(e *core.Edge) { out = append(out, e) })
	for i := 0; i < s.Len(); i++ {
		d.Push(s.TimeAt(i), s.Vals[i])
	}
	d.Flush()
	edges := make([]core.Edge, len(out))
	for i, e := range out {
		edges[i] = *e
	}
	return edges
}

// TestEdgeDetectorParity is the property test behind the streaming edge
// operator: on randomized series — plateaus, ramps, spikes, NaN gaps —
// the incremental detector reproduces core.DetectEdgesThreshold exactly:
// same edges, same indices, same float-accumulated amplitudes, same
// 80 %-return durations.
func TestEdgeDetectorParity(t *testing.T) {
	r := rng.New(42)
	const threshold = 50.0
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.IntN(120)
		s := tsagg.NewSeries(1000, 10, n)
		level := 500.0
		for i := 0; i < n; i++ {
			switch r.IntN(10) {
			case 0:
				continue // leave NaN gap
			case 1, 2:
				level += r.Uniform(-200, 200) // step
			case 3:
				level += r.Uniform(-60, 60) // near-threshold move
			}
			s.Vals[i] = level + r.Uniform(-5, 5)
		}
		want := core.DetectEdgesThreshold(s, threshold)
		got := feedDetector(s, threshold)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d edges, want %d\ngot  %+v\nwant %+v",
				trial, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d edge %d:\ngot  %+v\nwant %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestEdgeDetectorMergesAndBreaks pins the fine structure on a crafted
// series: merged same-direction crossings, a NaN break, a direction flip
// opening an opposite edge from the breaking delta, and duration
// resolution across a later edge.
func TestEdgeDetectorMergesAndBreaks(t *testing.T) {
	nan := math.NaN()
	vals := []float64{
		100, 100, 300, 500, 520, // rising edge merged over two crossings
		510, 180, // falling edge; also returns the rising edge 80 % of the way
		nan, 200, 190, // NaN gap breaks and suppresses detection
		200, 600, 210, // spike: rising then falling from the breaking delta
		205, 200,
	}
	s := &tsagg.Series{Start: 0, Step: 10, Vals: vals}
	want := core.DetectEdgesThreshold(s, 150)
	got := feedDetector(s, 150)
	if len(got) != len(want) {
		t.Fatalf("got %d edges, want %d: %+v vs %+v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("edge %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	// Sanity on the scenario itself: at least one merged rising edge and
	// one resolved duration.
	var sawMerged, sawResolved bool
	for _, e := range got {
		if e.EndIdx-e.StartIdx > 1 {
			sawMerged = true
		}
		if e.DurationSec >= 0 {
			sawResolved = true
		}
	}
	if !sawMerged || !sawResolved {
		t.Errorf("scenario lost its teeth: merged=%v resolved=%v (%+v)", sawMerged, sawResolved, got)
	}
}

// TestEdgeDetectorFlushEmitsOpenEdge verifies an edge still merging at
// stream end is emitted with duration -1, as the batch detector does for
// a series ending mid-edge.
func TestEdgeDetectorFlushEmitsOpenEdge(t *testing.T) {
	s := &tsagg.Series{Start: 0, Step: 10, Vals: []float64{100, 400, 700}}
	want := core.DetectEdgesThreshold(s, 150)
	got := feedDetector(s, 150)
	if len(want) != 1 || len(got) != 1 {
		t.Fatalf("got %d/%d edges, want 1/1", len(got), len(want))
	}
	if got[0] != want[0] {
		t.Errorf("got %+v, want %+v", got[0], want[0])
	}
	if got[0].DurationSec != -1 {
		t.Errorf("open edge duration = %d, want -1", got[0].DurationSec)
	}
}
