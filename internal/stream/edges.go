package stream

import (
	"math"

	"repro/internal/core"
)

// EdgeDetector is the online counterpart of core.DetectEdgesThreshold plus
// its duration follow-up: values of a regular series arrive one at a time
// (NaN for missing windows) and completed edges come out incrementally,
// with DurationSec resolved retroactively as post-edge values arrive. Fed
// the same values in the same order, it produces exactly the edges the
// batch detector finds on the completed series — TestEdgeDetectorParity
// pins this with randomized series.
type EdgeDetector struct {
	threshold float64
	idx       int // index of the next value
	prev      float64
	prevT     int64
	// In-progress merged edge (same-direction threshold crossings).
	merging   bool
	cur       core.Edge
	startVal  float64 // value at cur.StartIdx (the pre-edge level)
	curStartT int64   // timestamp of cur.StartIdx
	// Completed edges whose duration is still unresolved. Entries point at
	// edges already emitted; resolution mutates them in place.
	pending []*durState
	emit    func(*core.Edge)
}

// durState tracks the paper's 80 %-return duration for one emitted edge.
type durState struct {
	edge    *core.Edge
	base    float64 // pre-edge level
	extreme float64 // running peak (rising) or trough (falling)
	startT  int64   // timestamp of the edge start
}

// NewEdgeDetector returns a detector with the given absolute threshold in
// watts. Completed edges are handed to emit exactly once; their
// DurationSec may still be -1 at that point and is filled in later when
// the series returns 80 % of the way to the pre-edge level.
func NewEdgeDetector(threshold float64, emit func(*core.Edge)) *EdgeDetector {
	if emit == nil {
		panic("stream: nil edge emit callback")
	}
	return &EdgeDetector{threshold: threshold, emit: emit, prev: math.NaN()}
}

// Push feeds the next series value. t must advance by one series step per
// call; v may be NaN for a missing window.
func (d *EdgeDetector) Push(t int64, v float64) {
	k := d.idx
	d.idx++
	switch {
	case d.merging:
		if math.IsNaN(v) {
			// NaN breaks the in-progress edge (batch: merge loop stops at
			// the first NaN and the outer loop skips past it).
			d.closeEdge()
		} else {
			dj := v - d.prev
			if math.Abs(dj) >= d.threshold && (dj > 0) == d.cur.Rising {
				d.cur.AmplitudeW += dj
				d.cur.EndIdx = k
				d.cur.T = t
			} else {
				d.closeEdge()
				// The batch outer loop resumes at the breaking index, so the
				// breaking delta itself can open a new (opposite-direction)
				// edge.
				if math.Abs(dj) >= d.threshold {
					d.openEdge(k, t, dj)
				}
			}
		}
	case k > 0 && !math.IsNaN(d.prev) && !math.IsNaN(v):
		if delta := v - d.prev; math.Abs(delta) >= d.threshold {
			d.openEdge(k, t, delta)
		}
	}
	// Duration resolution sees every value from each edge's EndIdx+1 on —
	// including values inside later edges, exactly like the batch scan.
	d.feedDurations(t, v)
	d.prev, d.prevT = v, t
}

// openEdge starts a merged edge whose first crossing is prev -> value k.
func (d *EdgeDetector) openEdge(k int, t int64, delta float64) {
	d.merging = true
	d.startVal = d.prev
	d.curStartT = d.prevT
	d.cur = core.Edge{
		StartIdx:    k - 1,
		EndIdx:      k,
		T:           t,
		Rising:      delta > 0,
		AmplitudeW:  delta,
		DurationSec: -1,
	}
}

// closeEdge finalizes the in-progress edge and starts tracking its return
// duration. At this point d.prev is the value at cur.EndIdx.
func (d *EdgeDetector) closeEdge() {
	d.merging = false
	e := d.cur
	d.emit(&e)
	d.pending = append(d.pending, &durState{
		edge:    &e,
		base:    d.startVal,
		extreme: d.prev,
		startT:  d.curStartT,
	})
}

// feedDurations advances every unresolved duration scan with value v at
// time t, mirroring core.edgeDuration's loop body.
func (d *EdgeDetector) feedDurations(t int64, v float64) {
	if len(d.pending) == 0 || math.IsNaN(v) {
		return
	}
	keep := d.pending[:0]
	for _, ds := range d.pending {
		e := ds.edge
		if e.Rising && v > ds.extreme {
			ds.extreme = v
		}
		if !e.Rising && v < ds.extreme {
			ds.extreme = v
		}
		// Return threshold recomputed against the running extreme.
		ret := ds.extreme - 0.8*(ds.extreme-ds.base)
		if (e.Rising && v <= ret) || (!e.Rising && v >= ret) {
			e.DurationSec = t - ds.startT
			continue
		}
		keep = append(keep, ds)
	}
	d.pending = keep
}

// Flush completes an in-progress edge at series end (the batch detector
// emits it with the merge run ending at the last value). Unreturned
// durations stay -1. The detector remains usable afterwards only for
// duration resolution; callers invoke it once when the stream closes.
func (d *EdgeDetector) Flush() {
	if d.merging {
		d.closeEdge()
	}
}

// Edges runs streaming edge detection (paper §4) over the fleet power
// rollup: each finalized frame contributes one series value (NaN on gap
// frames, matching the offline series' missing slots) and detected edges
// accumulate in a bounded ring.
type Edges struct {
	det   *EdgeDetector
	max   int
	edges []*core.Edge // ascending by detection time, len <= max
	total int64
}

func newEdges(cfg Config) *Edges {
	e := &Edges{max: cfg.MaxEdges}
	e.det = NewEdgeDetector(cfg.edgeThreshold(), func(edge *core.Edge) {
		e.total++
		e.edges = append(e.edges, edge)
		if len(e.edges) > e.max {
			// Evict oldest; a pending duration scan keeps its pointer and
			// harmlessly resolves the evicted edge.
			e.edges = append(e.edges[:0], e.edges[len(e.edges)-e.max:]...)
		}
	})
	return e
}

// Name implements Operator.
func (e *Edges) Name() string { return "edges" }

// Apply implements Operator. The fleet value replicates the rollup's
// node-order summation so the detector sees exactly the offline cluster
// power series.
//
//lint:detroot
func (e *Edges) Apply(f *Frame) {
	v := math.NaN()
	if f.Observed > 0 {
		v = 0
		for i := range f.NodePower {
			if f.NodePower[i].Count == 0 {
				continue
			}
			v += f.NodePower[i].Mean
		}
	}
	e.det.Push(f.Start, v)
}

// Flush implements Operator.
func (e *Edges) Flush() { e.det.Flush() }

// Threshold returns the detector's absolute threshold in watts.
func (e *Edges) Threshold() float64 { return e.det.threshold }

// snapshotLocked copies up to limit most-recent edges (limit <= 0: all
// retained). Caller holds the pipeline snapshot lock.
func (e *Edges) snapshotLocked(limit int) (edges []core.Edge, total int64) {
	n := len(e.edges)
	if limit > 0 && n > limit {
		n = limit
	}
	edges = make([]core.Edge, n)
	for i, ep := range e.edges[len(e.edges)-n:] {
		edges[i] = *ep
	}
	return edges, e.total
}
