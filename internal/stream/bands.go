package stream

import (
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/units"
)

// Bands maintains the rolling thermal-band classification (paper §2): the
// per-window histogram of GPU core-temperature channels over the five
// bands, plus the run-long occupancy summary. Accumulation order matches
// the offline reduction (window order through stats.Moments), so the
// summary is bit-identical to core.ThermalBandsFromSource over the same
// windows.
type Bands struct {
	totalGPUs float64
	acc       [core.NumTempBands]stats.Moments
	cur       [core.NumTempBands]float64
	curT      int64
	windows   int64
}

func newBands(cfg Config) *Bands {
	return &Bands{totalGPUs: float64(cfg.Nodes * units.GPUsPerNode), curT: -1}
}

// Name implements Operator.
func (b *Bands) Name() string { return "bands" }

// Apply implements Operator. Gap frames contribute zero counts, exactly
// like the offline collector, which sets every band series slot on every
// window.
//
//lint:detroot
func (b *Bands) Apply(f *Frame) {
	for i := 0; i < core.NumTempBands; i++ {
		v := float64(f.BandGPUs[i])
		b.acc[i].Add(v)
		b.cur[i] = v
	}
	b.curT = f.Start
	b.windows++
}

// Flush implements Operator.
func (b *Bands) Flush() {}

// BandsSnapshot is a consistent copy of the thermal-band state.
type BandsSnapshot struct {
	T         int64 // timestamp of the current histogram (-1 before data)
	TotalGPUs float64
	Windows   int64
	Current   [core.NumTempBands]float64 // latest window's counts
	Summary   []core.BandSummary         // run-long occupancy per band
}

// snapshotLocked reduces the accumulated occupancy exactly as the offline
// thermalBandsFrom does. Caller holds the pipeline snapshot lock.
func (b *Bands) snapshotLocked() BandsSnapshot {
	out := BandsSnapshot{
		T:         b.curT,
		TotalGPUs: b.totalGPUs,
		Windows:   b.windows,
		Current:   b.cur,
		Summary:   make([]core.BandSummary, core.NumTempBands),
	}
	for i := 0; i < core.NumTempBands; i++ {
		m := b.acc[i]
		out.Summary[i] = core.BandSummary{
			Band:     i,
			Label:    core.TempBandLabel(i),
			MeanGPUs: m.Mean(),
			MaxGPUs:  m.Max,
		}
		if b.totalGPUs > 0 {
			out.Summary[i].MeanShare = m.Mean() / b.totalGPUs
		}
	}
	return out
}
