package stream

import (
	"math"

	"repro/internal/stats"
	"repro/internal/tsagg"
)

// alignWindow returns the start of the window containing t (floor division,
// correct for negative times).
func alignWindow(t, step int64) int64 {
	m := t % step
	if m < 0 {
		m += step
	}
	return t - m
}

// openWindow is one not-yet-finalized coarsening window.
type openWindow struct {
	start int64
	m     stats.Moments
}

// WindowCoarsener is the event-time streaming counterpart of
// tsagg.Coarsener. Where the batch coarsener assumes almost-ordered input
// and folds any straggler into whatever window is currently open, this one
// keeps every window open until a watermark says no more samples for it can
// arrive, assigning each sample to the window its own timestamp names. The
// two agree exactly on in-order input (see TestWindowCoarsenerParity); they
// diverge only on samples later than the configured lateness bound, which
// the batch path absorbs into the wrong window and this path drops.
type WindowCoarsener struct {
	step int64
	// closedEnd is the high-water mark of finalization: every window whose
	// end (start+step) is <= closedEnd has been emitted and will not
	// reopen. Samples destined for such a window are rejected by Add.
	closedEnd int64
	// open holds the in-flight windows in ascending start order. Bounded
	// lateness keeps this short: at most lateness/step+2 entries.
	open []openWindow
}

// NewWindowCoarsener returns a coarsener with the given window size in
// seconds. It panics if step <= 0 (a programming error).
func NewWindowCoarsener(step int64) *WindowCoarsener {
	if step <= 0 {
		panic("stream: non-positive coarsening window")
	}
	return &WindowCoarsener{step: step, closedEnd: math.MinInt64}
}

// Add feeds one sample, returning false when the sample's window has
// already been finalized (the sample is too late and must be dropped).
func (c *WindowCoarsener) Add(t int64, v float64) bool {
	ws := alignWindow(t, c.step)
	if c.closedEnd != math.MinInt64 && ws+c.step <= c.closedEnd {
		return false
	}
	// Find or insert the window, keeping `open` sorted by start.
	i := len(c.open)
	for i > 0 && c.open[i-1].start > ws {
		i--
	}
	if i > 0 && c.open[i-1].start == ws {
		c.open[i-1].m.Add(v)
		return true
	}
	c.open = append(c.open, openWindow{})
	copy(c.open[i+1:], c.open[i:])
	c.open[i] = openWindow{start: ws}
	c.open[i].m.Add(v)
	return true
}

// CloseThrough finalizes every open window whose end lies at or before
// end, reporting each to emit in ascending start order, and raises the
// rejection floor so those windows cannot reopen. Pass math.MaxInt64 to
// flush everything.
func (c *WindowCoarsener) CloseThrough(end int64, emit func(tsagg.WindowStat)) {
	if c.closedEnd != math.MinInt64 && end <= c.closedEnd {
		return
	}
	c.closedEnd = end
	n := 0
	for _, w := range c.open {
		if w.start+c.step > end && end != math.MaxInt64 {
			break
		}
		emit(tsagg.WindowStat{
			T:     w.start,
			Count: w.m.N,
			Min:   w.m.Min,
			Max:   w.m.Max,
			Mean:  w.m.Mean(),
			Std:   w.m.Std(),
		})
		n++
	}
	c.open = append(c.open[:0], c.open[n:]...)
}

// Open returns the number of in-flight windows (for tests and health).
func (c *WindowCoarsener) Open() int { return len(c.open) }
