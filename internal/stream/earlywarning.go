package stream

import (
	"sort"

	"repro/internal/core"
	"repro/internal/failures"
	"repro/internal/units"
)

// ewPair is the per-(precursor, outcome) streaming state. It reproduces
// core.EarlyWarning's first-outcome-at-or-after matching on an ordered
// event feed: each precursor waits on its GPU until the first outcome at
// or after it arrives; outcomes inside the horizon count as followed.
type ewPair struct {
	precursor failures.Type
	outcome   failures.Type

	precursors int
	followed   int
	outcomes   int     // all outcome events (base-rate numerator)
	leads      []int64 // lead times of followed pairs, arrival order
	// pending holds unmatched precursor times per GPU, ascending.
	pending map[ewGPU][]int64
}

type ewGPU struct {
	node int
	slot int
}

// EarlyWarning maintains the §6.1 precursor→outcome lift statistics over a
// live failure feed for the paper's three pairs. Events must arrive in
// non-decreasing time order per GPU; the pipeline sorts each ingested
// batch by time. On a tie between a precursor and its outcome on the same
// GPU, the precursor must come first in the feed to count as followed —
// the one ordering the batch analysis cannot distinguish either.
type EarlyWarning struct {
	nodes     int
	windowSec int64
	pairs     []*ewPair
}

func newEarlyWarning(cfg Config) *EarlyWarning {
	defs := [][2]failures.Type{
		{failures.MicrocontrollerWarning, failures.DriverErrorHandling},
		{failures.DoubleBitError, failures.PageRetirementEvent},
		{failures.PageRetirementEvent, failures.PageRetirementFailure},
	}
	ew := &EarlyWarning{nodes: cfg.Nodes, windowSec: cfg.EarlyWarningWindowSec}
	for _, d := range defs {
		ew.pairs = append(ew.pairs, &ewPair{
			precursor: d[0],
			outcome:   d[1],
			pending:   map[ewGPU][]int64{},
		})
	}
	return ew
}

// Name implements Operator.
func (ew *EarlyWarning) Name() string { return "earlywarning" }

// Apply implements Operator. Early warning consumes the failure feed, not
// the telemetry frames; frames only advance the observation span, which
// the pipeline tracks.
//
//lint:detroot
func (ew *EarlyWarning) Apply(f *Frame) {}

// Flush implements Operator.
func (ew *EarlyWarning) Flush() {}

// observe feeds one failure event. Caller holds the pipeline snapshot
// lock.
func (ew *EarlyWarning) observe(e *failures.Event) {
	k := ewGPU{int(e.Node), int(e.Slot)}
	for _, p := range ew.pairs {
		// A type may be an outcome in one pair and a precursor in another
		// (the retirement chain), so both arms run independently.
		if e.Type == p.outcome {
			p.outcomes++
			pend := p.pending[k]
			if len(pend) > 0 {
				// This is the first outcome at or after every pending
				// precursor on this GPU; within the horizon it follows.
				for _, pt := range pend {
					if e.Time-pt <= ew.windowSec {
						p.followed++
						p.leads = append(p.leads, e.Time-pt)
					}
				}
				p.pending[k] = pend[:0]
			}
		}
		if e.Type == p.precursor {
			p.precursors++
			// Expire horizons that can no longer be met to bound memory;
			// correctness does not depend on it (expired entries would
			// fail the horizon check anyway).
			pend := p.pending[k]
			keep := pend[:0]
			for _, pt := range pend {
				if e.Time-pt <= ew.windowSec {
					keep = append(keep, pt)
				}
			}
			p.pending[k] = append(keep, e.Time)
		}
	}
}

// snapshotLocked reduces the streaming state to the batch statistics,
// mirroring core.EarlyWarning field by field. spanSec is the finalized
// observation span. Caller holds the pipeline snapshot lock.
func (ew *EarlyWarning) snapshotLocked(spanSec int64) []core.PrecursorStats {
	gpuWindows := float64(ew.nodes*units.GPUsPerNode) * float64(spanSec) / float64(ew.windowSec)
	out := make([]core.PrecursorStats, len(ew.pairs))
	for i, p := range ew.pairs {
		st := core.PrecursorStats{
			Precursor:  p.precursor,
			Outcome:    p.outcome,
			WindowSec:  ew.windowSec,
			Precursors: p.precursors,
			Followed:   p.followed,
		}
		if p.precursors > 0 {
			st.HitRate = float64(p.followed) / float64(p.precursors)
			if gpuWindows > 0 {
				st.BaseRate = float64(p.outcomes) / gpuWindows
				if st.BaseRate > 1 {
					st.BaseRate = 1
				}
			}
			if st.BaseRate > 0 {
				st.Lift = st.HitRate / st.BaseRate
			}
			if len(p.leads) > 0 {
				leads := append([]int64(nil), p.leads...)
				sort.Slice(leads, func(a, b int) bool { return leads[a] < leads[b] })
				st.MedianLeadSec = leads[len(leads)/2]
			}
		}
		out[i] = st
	}
	return out
}
