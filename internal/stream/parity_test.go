package stream_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/failures"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/units"
)

// eqBits is bit-level float equality (NaN == NaN, +0 != -0): the parity
// contract is exact, tolerance zero.
func eqBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// TestBatchStreamParity is the correctness anchor of the streaming plane:
// one simulated run is collected offline (the batch plane) and
// simultaneously exported as telemetry samples into a stream pipeline.
// After Close, every streaming result must equal the offline
// core.*FromSource analysis bit for bit — zero tolerance. The exported
// per-node feed is one input-power sample and six GPU core-temperature
// samples per observed node per window (each window's coarsened mean of a
// single sample is that sample, exactly), so both planes see identical
// values and, because both sum in node-index order, identical floats.
//
// Documented divergences (not exercised here): samples later than the
// lateness bound are dropped by the stream plane but folded into the
// wrong window by tsagg.Coarsener; windows with zero observed nodes are
// NaN in the stream rollup but 0 in the offline cluster series.
func TestBatchStreamParity(t *testing.T) {
	cfg := sim.Config{
		Seed:             7,
		Nodes:            72, // 4 cabinets, so the 5-MSB rollup also exercises clamping
		StartTime:        1_577_836_800,
		DurationSec:      1800,
		StepSec:          10,
		SamplesPerWindow: 2,
		Jobs:             240, // dense enough churn for at least one fleet-level edge
		FailureRateScale: 50_000,
		FailureCheckSec:  60,
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	col := core.NewCollector(s, cfg)

	pipe, err := stream.NewPipeline(stream.Config{
		Nodes:      cfg.Nodes,
		StartTime:  cfg.StartTime,
		StepSec:    cfg.StepSec,
		MSBs:       5,
		QueueDepth: 4096,
		MaxWindows: 8192,
		MaxEdges:   8192,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Cabinet-sum oracle, accumulated in the same node order the rollup
	// operator uses (the offline plane has no per-cabinet series).
	cabinets := (cfg.Nodes + units.NodesPerCabinet - 1) / units.NodesPerCabinet
	var wantCab [][]float64

	feeder := sim.ObserverFunc(func(snap *sim.Snapshot) {
		var batch []telemetry.Sample
		cab := make([]float64, cabinets)
		anyNode := false
		for i := range snap.NodeStat {
			if snap.NodeStat[i].Count == 0 {
				continue
			}
			anyNode = true
			batch = append(batch, telemetry.Sample{
				Node: topology.NodeID(i), Metric: telemetry.MetricInputPower,
				T: snap.T, Value: snap.NodeStat[i].Mean,
			})
			cab[i/units.NodesPerCabinet] += snap.NodeStat[i].Mean
			for g := 0; g < units.GPUsPerNode; g++ {
				v := snap.GPUCoreTemp[i][g]
				if math.IsNaN(v) {
					continue
				}
				batch = append(batch, telemetry.Sample{
					Node: topology.NodeID(i), Metric: telemetry.GPUCoreTempMetric(topology.GPUSlot(g)),
					T: snap.T, Value: v,
				})
			}
		}
		if !anyNode {
			for c := range cab {
				cab[c] = math.NaN()
			}
		}
		wantCab = append(wantCab, cab)
		pipe.Ingest(batch)
		if len(snap.Failures) > 0 {
			pipe.IngestEvents(append([]failures.Event(nil), snap.Failures...))
		}
	})

	res, err := s.Run(col, feeder)
	if err != nil {
		t.Fatal(err)
	}
	col.SetFailures(res.Failures)
	pipe.Close()

	d := col.Data()
	src := d.Source()
	snap := pipe.Snapshot()

	// The parity claim assumes lossless streaming; anything dropped would
	// make a mismatch unexplainable.
	if st := snap.Ingest; st.Dropped != 0 || st.Late != 0 || st.Rejected != 0 || st.MergeLate != 0 {
		t.Fatalf("stream lost data: %+v", st)
	}

	// --- Rollups: fleet bit-equals the cluster sensor series; MSB sums
	// bit-equal the offline per-MSB summation; cabinets match the oracle.
	windows := d.ClusterPower.Len()
	if len(snap.Rollup.Recent) != windows {
		t.Fatalf("stream finalized %d windows, offline has %d", len(snap.Rollup.Recent), windows)
	}
	for k, w := range snap.Rollup.Recent {
		if w.T != d.ClusterPower.TimeAt(k) {
			t.Fatalf("window %d: stream t=%d, offline t=%d", k, w.T, d.ClusterPower.TimeAt(k))
		}
		if !eqBits(w.FleetW, d.ClusterPower.Vals[k]) {
			t.Errorf("window %d fleet: stream %v, offline %v", k, w.FleetW, d.ClusterPower.Vals[k])
		}
		for m := range w.MSBW {
			if !eqBits(w.MSBW[m], d.MSBSensorSum[m].Vals[k]) {
				t.Errorf("window %d MSB %d: stream %v, offline %v",
					k, m, w.MSBW[m], d.MSBSensorSum[m].Vals[k])
			}
		}
		for c := range w.CabinetW {
			if !eqBits(w.CabinetW[c], wantCab[k][c]) {
				t.Errorf("window %d cabinet %d: stream %v, oracle %v",
					k, c, w.CabinetW[c], wantCab[k][c])
			}
		}
	}

	// --- Edges.
	wantEdges, err := core.EdgesFromSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Edges) != len(wantEdges) {
		t.Fatalf("stream found %d edges, offline %d:\nstream  %+v\noffline %+v",
			len(snap.Edges), len(wantEdges), snap.Edges, wantEdges)
	}
	for i := range wantEdges {
		if snap.Edges[i] != wantEdges[i] {
			t.Errorf("edge %d: stream %+v, offline %+v", i, snap.Edges[i], wantEdges[i])
		}
	}
	if len(wantEdges) == 0 {
		t.Error("run produced no edges; parity test needs a livelier workload")
	}

	// --- Thermal bands.
	wantBands, err := core.ThermalBandsFromSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Bands.Summary) != len(wantBands) {
		t.Fatalf("band summaries: %d vs %d", len(snap.Bands.Summary), len(wantBands))
	}
	for b := range wantBands {
		g, w := snap.Bands.Summary[b], wantBands[b]
		if g.Band != w.Band || g.Label != w.Label ||
			!eqBits(g.MeanGPUs, w.MeanGPUs) || !eqBits(g.MaxGPUs, w.MaxGPUs) ||
			!eqBits(g.MeanShare, w.MeanShare) {
			t.Errorf("band %d: stream %+v, offline %+v", b, g, w)
		}
	}

	// --- Early warning.
	wantEW, err := core.EarlyWarningFromSource(src, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.EarlyWarning) != len(wantEW) {
		t.Fatalf("early-warning pairs: %d vs %d", len(snap.EarlyWarning), len(wantEW))
	}
	for i := range wantEW {
		g, w := snap.EarlyWarning[i], wantEW[i]
		if g.Precursor != w.Precursor || g.Outcome != w.Outcome ||
			g.WindowSec != w.WindowSec || g.Precursors != w.Precursors ||
			g.Followed != w.Followed || g.MedianLeadSec != w.MedianLeadSec ||
			!eqBits(g.HitRate, w.HitRate) || !eqBits(g.BaseRate, w.BaseRate) ||
			!eqBits(g.Lift, w.Lift) {
			t.Errorf("pair %d: stream %+v, offline %+v", i, g, w)
		}
	}
	var precursors int
	for _, w := range wantEW {
		precursors += w.Precursors
	}
	if precursors == 0 {
		t.Error("run produced no precursor events; raise FailureRateScale")
	}
}
