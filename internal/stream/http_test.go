package stream

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/failures"
	"repro/internal/telemetry"
)

// servedPipeline builds a small finished run: 2 nodes, 3 windows of
// power, one GPU temperature channel, and one precursor→outcome failure
// pair — enough to give every route non-trivial content.
func servedPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p := mustPipeline(t, Config{Nodes: 2, StepSec: 10, Shards: 1})
	for w := int64(0); w < 3; w++ {
		p.Ingest([]telemetry.Sample{
			powerSample(0, w*10, 1000),
			powerSample(1, w*10, 2000),
			{Node: 0, Metric: telemetry.GPUCoreTempMetric(0), T: w * 10, Value: 45},
		})
	}
	p.IngestEvents([]failures.Event{
		{Time: 5, Node: 0, Type: failures.MicrocontrollerWarning},
		{Time: 25, Node: 0, Type: failures.DriverErrorHandling},
	})
	p.Close()
	return p
}

func getJSON(t *testing.T, srv *httptest.Server, path string) map[string]any {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", path, body, err)
	}
	return out
}

func TestHTTPRoutes(t *testing.T) {
	p := servedPipeline(t)
	srv := httptest.NewServer(NewHandler(p, ServeConfig{}))
	defer srv.Close()

	rollup := getJSON(t, srv, "/api/v1/live/rollup")
	if rollup["group"] != "fleet" || rollup["windows_total"] != float64(3) {
		t.Errorf("rollup = %v", rollup)
	}
	points := rollup["points"].([]any)
	if len(points) != 3 {
		t.Fatalf("fleet points = %d, want 3", len(points))
	}
	if v := points[0].(map[string]any)["v"]; v != float64(3000) {
		t.Errorf("fleet window 0 = %v, want 3000", v)
	}
	// 3 windows × 3000 W × 10 s.
	if rollup["energy_j"] != float64(90000) {
		t.Errorf("energy_j = %v, want 90000", rollup["energy_j"])
	}

	cab := getJSON(t, srv, "/api/v1/live/rollup?group=cabinet&limit=2")
	series := cab["series"].([]any)
	if len(series) != 1 {
		t.Fatalf("cabinet series = %d, want 1", len(series))
	}
	s0 := series[0].(map[string]any)
	if s0["label"] != "cabinet 0" || len(s0["points"].([]any)) != 2 {
		t.Errorf("cabinet series = %v", s0)
	}

	msb := getJSON(t, srv, "/api/v1/live/rollup?group=msb")
	if n := len(msb["series"].([]any)); n != 5 {
		t.Errorf("msb series = %d, want 5", n)
	}

	edges := getJSON(t, srv, "/api/v1/live/edges")
	if edges["threshold_w"] != float64(2*868) {
		t.Errorf("threshold_w = %v, want %v", edges["threshold_w"], 2*868)
	}

	bands := getJSON(t, srv, "/api/v1/live/bands")
	if bands["windows"] != float64(3) || bands["total_gpus"] != float64(12) {
		t.Errorf("bands = %v", bands)
	}
	if n := len(bands["summary"].([]any)); n == 0 {
		t.Error("bands summary empty")
	}

	ew := getJSON(t, srv, "/api/v1/live/earlywarning")
	pairs := ew["pairs"].([]any)
	if len(pairs) != 3 {
		t.Fatalf("earlywarning pairs = %d, want 3", len(pairs))
	}
	p0 := pairs[0].(map[string]any)
	if p0["precursors"] != float64(1) || p0["followed"] != float64(1) {
		t.Errorf("microcontroller pair = %v", p0)
	}

	health := getJSON(t, srv, "/api/v1/live/health")
	if health["status"] != "ok" || health["frames"] != float64(3) {
		t.Errorf("health = %v", health)
	}
	if health["watermark_t"] == nil {
		t.Error("watermark_t null after data")
	}

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("healthz = %d %q", resp.StatusCode, body)
	}
}

// TestHTTPGapWindowsAreNull: NaN rollup values (gap windows) must render
// as JSON null, never as invalid literals.
func TestHTTPGapWindowsAreNull(t *testing.T) {
	p := mustPipeline(t, Config{Nodes: 1, StepSec: 10})
	p.Ingest([]telemetry.Sample{powerSample(0, 0, 500)})
	p.Ingest([]telemetry.Sample{powerSample(0, 30, 500)})
	p.Close()
	srv := httptest.NewServer(NewHandler(p, ServeConfig{}))
	defer srv.Close()
	rollup := getJSON(t, srv, "/api/v1/live/rollup")
	points := rollup["points"].([]any)
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4", len(points))
	}
	if v := points[1].(map[string]any)["v"]; v != nil {
		t.Errorf("gap window = %v, want null", v)
	}
}

func TestHTTPErrors(t *testing.T) {
	p := servedPipeline(t)
	srv := httptest.NewServer(NewHandler(p, ServeConfig{MaxQueryLen: 32}))
	defer srv.Close()

	check := func(path, method string, want int) {
		t.Helper()
		req, err := http.NewRequest(method, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s %s = %d (%s), want %d", method, path, resp.StatusCode, body, want)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s %s: error body %q not {\"error\": ...}", method, path, body)
		}
	}
	check("/api/v1/live/rollup?group=nonsense", http.MethodGet, http.StatusBadRequest)
	check("/api/v1/live/rollup?limit=abc", http.MethodGet, http.StatusBadRequest)
	check("/api/v1/live/edges?limit=x", http.MethodGet, http.StatusBadRequest)
	check("/api/v1/live/rollup", http.MethodPost, http.StatusMethodNotAllowed)
	check("/api/v1/live/health", http.MethodPost, http.StatusMethodNotAllowed)
	check("/api/v1/live/rollup?pad="+strings.Repeat("x", 64), http.MethodGet,
		http.StatusRequestURITooLong)
}

// TestHTTPShedsAtConcurrencyLimit fills the limiter directly and checks
// the guard sheds with 503 + Retry-After instead of queueing.
func TestHTTPShedsAtConcurrencyLimit(t *testing.T) {
	p := servedPipeline(t)
	h := &handler{p: p, cfg: ServeConfig{MaxConcurrent: 1}.withDefaults()}
	h.sem = make(chan struct{}, 1)
	h.sem <- struct{}{} // occupy the only slot

	rec := httptest.NewRecorder()
	h.guard(h.rollup)(rec, httptest.NewRequest(http.MethodGet, "/api/v1/live/rollup", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}

	<-h.sem // release; the same request must now succeed
	rec = httptest.NewRecorder()
	h.guard(h.rollup)(rec, httptest.NewRequest(http.MethodGet, "/api/v1/live/rollup", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status after release = %d, want 200", rec.Code)
	}
}

// TestHTTPHealthReportsDegradation: a pipeline that dropped late samples
// must say so on the health route.
func TestHTTPHealthReportsDegradation(t *testing.T) {
	p := mustPipeline(t, Config{Nodes: 1, StepSec: 10, LatenessSec: 5})
	p.Ingest([]telemetry.Sample{powerSample(0, 100, 1)})
	p.Ingest([]telemetry.Sample{powerSample(0, 12, 2)}) // late
	p.Close()
	srv := httptest.NewServer(NewHandler(p, ServeConfig{}))
	defer srv.Close()
	health := getJSON(t, srv, "/api/v1/live/health")
	if health["status"] != "degraded" || health["late"] != float64(1) {
		t.Errorf("health = %v", health)
	}
	if rs, ok := health["reasons"].([]any); !ok || len(rs) == 0 {
		t.Errorf("reasons = %v", health["reasons"])
	}
}
