package stream

import (
	"math"

	"repro/internal/topology"
	"repro/internal/units"
)

// RollupWindow is one finalized window of the fleet/cabinet/MSB power
// rollup. Power values are NaN when the window carried no telemetry at
// all; with at least one observed node the sums cover exactly the
// observed nodes, matching the offline collector's convention.
type RollupWindow struct {
	T        int64
	Observed int       // nodes with telemetry this window
	FleetW   float64   // Σ node input power (sensor view)
	CabinetW []float64 // per-cabinet sums
	MSBW     []float64 // per-switchboard sums
}

// Rollup maintains the live power rollups: a bounded ring of recent
// windows plus the running sensor-energy integral. Summation is in node
// order, replicating the offline collector's accumulation order so fleet
// and MSB sums are bit-identical to the batch plane.
type Rollup struct {
	nodes    int
	msbs     int
	perCab   int
	cabinets int
	max      int
	step     int64
	ring     []RollupWindow // ascending time, len <= max
	energyJ  float64        // Σ fleet power × step over observed windows
	windows  int64
}

func newRollup(cfg Config) *Rollup {
	cabinets := (cfg.Nodes + units.NodesPerCabinet - 1) / units.NodesPerCabinet
	return &Rollup{
		nodes:    cfg.Nodes,
		msbs:     cfg.MSBs,
		perCab:   units.NodesPerCabinet,
		cabinets: cabinets,
		max:      cfg.MaxWindows,
		step:     cfg.StepSec,
	}
}

// Name implements Operator.
func (r *Rollup) Name() string { return "rollup" }

// Apply implements Operator.
//
//lint:detroot
func (r *Rollup) Apply(f *Frame) {
	w := RollupWindow{
		T:        f.Start,
		Observed: f.Observed,
		CabinetW: make([]float64, r.cabinets),
		MSBW:     make([]float64, r.msbs),
	}
	if f.Observed == 0 {
		w.FleetW = math.NaN()
		for c := range w.CabinetW {
			w.CabinetW[c] = math.NaN()
		}
		for m := range w.MSBW {
			w.MSBW[m] = math.NaN()
		}
	} else {
		// Node-index order: the same order the simulator and the offline
		// collector sum in, so the floating-point result matches bit for
		// bit.
		for i := range f.NodePower {
			if f.NodePower[i].Count == 0 {
				continue
			}
			p := f.NodePower[i].Mean
			w.FleetW += p
			w.CabinetW[i/r.perCab] += p
			w.MSBW[topology.MSBForNode(r.nodes, r.msbs, i)] += p
		}
		r.energyJ += w.FleetW * float64(r.step)
	}
	r.windows++
	r.ring = append(r.ring, w)
	if len(r.ring) > r.max {
		r.ring = append(r.ring[:0], r.ring[len(r.ring)-r.max:]...)
	}
}

// Flush implements Operator.
func (r *Rollup) Flush() {}

// RollupSnapshot is a consistent copy of the rollup state.
type RollupSnapshot struct {
	Step     int64
	Windows  int64   // total windows observed (ring may hold fewer)
	EnergyJ  float64 // running fleet sensor-energy integral
	Cabinets int
	MSBs     int
	Recent   []RollupWindow // ascending time, deep-copied
}

// snapshotLocked copies up to limit most-recent windows (limit <= 0: all
// retained). Caller holds the pipeline snapshot lock.
func (r *Rollup) snapshotLocked(limit int) RollupSnapshot {
	n := len(r.ring)
	if limit > 0 && n > limit {
		n = limit
	}
	out := RollupSnapshot{
		Step:     r.step,
		Windows:  r.windows,
		EnergyJ:  r.energyJ,
		Cabinets: r.cabinets,
		MSBs:     r.msbs,
		Recent:   make([]RollupWindow, n),
	}
	src := r.ring[len(r.ring)-n:]
	for i, w := range src {
		cp := w
		cp.CabinetW = append([]float64(nil), w.CabinetW...)
		cp.MSBW = append([]float64(nil), w.MSBW...)
		out.Recent[i] = cp
	}
	return out
}
