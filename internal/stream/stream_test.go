package stream

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/topology"
)

func powerSample(node topology.NodeID, t int64, v float64) telemetry.Sample {
	return telemetry.Sample{Node: node, Metric: telemetry.MetricInputPower, T: t, Value: v}
}

func mustPipeline(t *testing.T, cfg Config) *Pipeline {
	t.Helper()
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// gateOp is an Extra operator whose Apply blocks until the gate is
// closed — a deliberately stalled consumer. It signals entry exactly once
// so the test knows the merge goroutine is wedged inside the chain.
type gateOp struct {
	entered chan struct{}
	gate    chan struct{}
	once    sync.Once
	frames  int
}

func newGateOp() *gateOp {
	return &gateOp{entered: make(chan struct{}), gate: make(chan struct{})}
}

func (g *gateOp) Name() string { return "gate" }
func (g *gateOp) Flush()       {}
func (g *gateOp) Apply(f *Frame) {
	g.frames++
	g.once.Do(func() { close(g.entered) })
	<-g.gate
}

// TestBackpressureNeverBlocksIngest is the ISSUE's load-shedding
// acceptance test: with a stalled consumer wedged in the operator chain
// and a bursty producer, Ingest must keep returning immediately, dropping
// and counting instead of stalling the fan-in path. Releasing the gate
// must drain cleanly, Close must return, and health must report the
// degradation.
func TestBackpressureNeverBlocksIngest(t *testing.T) {
	op := newGateOp()
	p := mustPipeline(t, Config{
		Nodes:      4,
		StepSec:    10,
		Shards:     1,
		QueueDepth: 1,
		Extra:      []Operator{op},
	})

	// Advance the watermark until the first frame reaches the gate. The
	// depth-1 queue may drop bursts along the way — that is the design —
	// so keep offering batches until the merge goroutine is wedged in
	// Apply. Bounded: if the frame never arrives, fail instead of hanging.
	ts := int64(0)
	wedged := false
	for i := 0; i < 1_000_000 && !wedged; i++ {
		select {
		case <-op.entered:
			wedged = true
		default:
			p.Ingest([]telemetry.Sample{powerSample(0, ts, 100)})
			ts += 10
		}
	}
	if !wedged {
		t.Fatal("first frame never reached the gated operator")
	}

	// Bursty producer against a wedged consumer: the shard queue (depth 1)
	// and the merge channel fill, then every further batch is dropped. The
	// loop is bounded — if Ingest ever blocked, or nothing was ever
	// dropped, the test fails rather than hanging.
	base := p.dropped.Load()
	dropped := false
	for i := 0; i < 1_000_000; i++ {
		p.Ingest([]telemetry.Sample{powerSample(0, ts, 100)})
		ts += 10
		if p.dropped.Load() > base {
			dropped = true
			break
		}
	}
	if !dropped {
		t.Fatal("stalled consumer never caused a drop; is the queue unbounded?")
	}

	close(op.gate) // consumer recovers
	p.Close()

	h := p.Health()
	if h.Status != "degraded" {
		t.Errorf("health after drops = %q, want degraded", h.Status)
	}
	found := false
	for _, r := range h.Reasons {
		if strings.Contains(r, "overflow") {
			found = true
		}
	}
	if !found {
		t.Errorf("health reasons %v do not mention queue overflow", h.Reasons)
	}
	snap := p.Snapshot()
	if snap.Ingest.Dropped == 0 {
		t.Error("snapshot lost the drop count")
	}
	if snap.Ingest.Frames == 0 || op.frames == 0 {
		t.Errorf("no frames applied: pipeline=%d gate=%d", snap.Ingest.Frames, op.frames)
	}
	if int64(op.frames) != snap.Ingest.Frames {
		t.Errorf("extra operator saw %d frames, pipeline applied %d", op.frames, snap.Ingest.Frames)
	}
}

// countOp records what the operator chain delivered.
type countOp struct {
	frames   int
	observed []int
	starts   []int64
	flushed  bool
}

func (c *countOp) Name() string { return "count" }
func (c *countOp) Flush()       { c.flushed = true }
func (c *countOp) Apply(f *Frame) {
	c.frames++
	c.observed = append(c.observed, f.Observed)
	c.starts = append(c.starts, f.Start)
}

// TestFrameGridMaterialized verifies the merger materializes the full
// window grid between the first and last data: sparse input still yields
// one frame per step, with Observed==0 on the gaps, and operators see
// strictly ascending starts.
func TestFrameGridMaterialized(t *testing.T) {
	op := &countOp{}
	p := mustPipeline(t, Config{Nodes: 2, StepSec: 10, Shards: 1, Extra: []Operator{op}})
	p.Ingest([]telemetry.Sample{powerSample(0, 0, 50), powerSample(1, 3, 70)})
	p.Ingest([]telemetry.Sample{powerSample(0, 100, 80)})
	p.Close()

	if op.frames != 11 {
		t.Fatalf("frames = %d, want 11 (t=0..100 inclusive): starts %v", op.frames, op.starts)
	}
	for i, s := range op.starts {
		if s != int64(i)*10 {
			t.Fatalf("frame %d start = %d, want %d", i, s, i*10)
		}
	}
	if op.observed[0] != 2 || op.observed[10] != 1 {
		t.Errorf("edge frames observed = %d,%d, want 2,1", op.observed[0], op.observed[10])
	}
	for i := 1; i < 10; i++ {
		if op.observed[i] != 0 {
			t.Errorf("gap frame %d observed = %d, want 0", i, op.observed[i])
		}
	}
	if !op.flushed {
		t.Error("Flush not called at end of stream")
	}
	snap := p.Snapshot()
	if snap.SpanSec != 110 {
		t.Errorf("SpanSec = %d, want 110", snap.SpanSec)
	}
	if snap.Ingest.Frames != 11 {
		t.Errorf("Frames counter = %d, want 11", snap.Ingest.Frames)
	}
	// Gap windows roll up as NaN (nothing observed), edges as real sums.
	r := snap.Rollup
	if len(r.Recent) != 11 {
		t.Fatalf("rollup windows = %d, want 11", len(r.Recent))
	}
	if r.Recent[0].FleetW != 120 || r.Recent[10].FleetW != 80 {
		t.Errorf("rollup edges = %v, %v, want 120, 80", r.Recent[0].FleetW, r.Recent[10].FleetW)
	}
	if !math.IsNaN(r.Recent[5].FleetW) {
		t.Errorf("gap rollup = %v, want NaN", r.Recent[5].FleetW)
	}
}

// TestShardedMergeOrdersFrames runs multiple shards and checks the merged
// fleet rollup equals the node-order sum each window — the merge cursor
// must wait for the slowest shard's watermark, never emitting a frame a
// shard could still contribute to.
func TestShardedMergeOrdersFrames(t *testing.T) {
	const nodes, windows = 8, 12
	p := mustPipeline(t, Config{Nodes: nodes, StepSec: 10, Shards: 4, QueueDepth: 64})
	for w := 0; w < windows; w++ {
		var batch []telemetry.Sample
		for n := 0; n < nodes; n++ {
			batch = append(batch, powerSample(topology.NodeID(n), int64(w*10), float64(100+n+w)))
		}
		p.Ingest(batch)
	}
	p.Close()
	snap := p.Snapshot()
	if st := snap.Ingest; st.Dropped != 0 || st.Late != 0 || st.MergeLate != 0 {
		t.Fatalf("lossless feed lost data: %+v", st)
	}
	if len(snap.Rollup.Recent) != windows {
		t.Fatalf("rollup windows = %d, want %d", len(snap.Rollup.Recent), windows)
	}
	for w, win := range snap.Rollup.Recent {
		sum := 0.0
		for n := 0; n < nodes; n++ {
			sum += float64(100 + n + w)
		}
		if math.Float64bits(win.FleetW) != math.Float64bits(sum) {
			t.Errorf("window %d fleet = %v, want %v", w, win.FleetW, sum)
		}
		if win.Observed != nodes {
			t.Errorf("window %d observed = %d, want %d", w, win.Observed, nodes)
		}
	}
}

// TestLateSampleDropped pins the lateness bound: once a shard's watermark
// has finalized a window, a straggler for it is dropped and counted.
func TestLateSampleDropped(t *testing.T) {
	p := mustPipeline(t, Config{Nodes: 1, StepSec: 10, Shards: 1, LatenessSec: 5})
	p.Ingest([]telemetry.Sample{powerSample(0, 100, 1)}) // watermark 95
	p.Ingest([]telemetry.Sample{powerSample(0, 12, 2)})  // window 10 long closed
	p.Close()
	snap := p.Snapshot()
	if snap.Ingest.Late != 1 {
		t.Errorf("late = %d, want 1", snap.Ingest.Late)
	}
	if h := p.Health(); h.Status != "degraded" {
		t.Errorf("health with late drops = %q, want degraded", h.Status)
	}
}

// TestIngestValidation checks rejection counting and that rejected
// samples never reach a shard.
func TestIngestValidation(t *testing.T) {
	p := mustPipeline(t, Config{Nodes: 2, StepSec: 10, StartTime: 1000})
	p.Ingest([]telemetry.Sample{
		powerSample(5, 1000, 1),  // node out of range
		powerSample(-1, 1000, 1), // negative node
		powerSample(0, 900, 1),   // before the grid
		powerSample(0, 1000, 42), // valid
	})
	p.Close()
	snap := p.Snapshot()
	if snap.Ingest.Received != 4 || snap.Ingest.Rejected != 3 {
		t.Errorf("received/rejected = %d/%d, want 4/3", snap.Ingest.Received, snap.Ingest.Rejected)
	}
	if len(snap.Rollup.Recent) != 1 || snap.Rollup.Recent[0].FleetW != 42 {
		t.Errorf("valid sample lost: %+v", snap.Rollup.Recent)
	}
}

// TestCloseIdempotentAndIngestAfterClose: Close twice is safe; batches
// offered after Close are counted as dropped, not delivered.
func TestCloseIdempotentAndIngestAfterClose(t *testing.T) {
	p := mustPipeline(t, Config{Nodes: 1, StepSec: 10})
	p.Ingest([]telemetry.Sample{powerSample(0, 0, 1)})
	p.Close()
	p.Close()
	p.Ingest([]telemetry.Sample{powerSample(0, 10, 1), powerSample(0, 20, 1)})
	snap := p.Snapshot()
	if snap.Ingest.Dropped != 2 {
		t.Errorf("post-close dropped = %d, want 2", snap.Ingest.Dropped)
	}
	if snap.Ingest.Frames != 1 {
		t.Errorf("frames = %d, want 1", snap.Ingest.Frames)
	}
}

// TestSnapshotConsistentUnderLoad takes snapshots concurrently with
// ingestion; the race detector is the real assertion, plus monotonicity
// of the frame counter and span.
func TestSnapshotConsistentUnderLoad(t *testing.T) {
	p := mustPipeline(t, Config{Nodes: 4, StepSec: 10, Shards: 2, QueueDepth: 512})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var lastFrames, lastSpan int64
		for i := 0; i < 200; i++ {
			s := p.Snapshot()
			if s.Ingest.Frames < lastFrames || s.SpanSec < lastSpan {
				t.Errorf("snapshot went backwards: frames %d->%d span %d->%d",
					lastFrames, s.Ingest.Frames, lastSpan, s.SpanSec)
				return
			}
			lastFrames, lastSpan = s.Ingest.Frames, s.SpanSec
		}
	}()
	for w := 0; w < 400; w++ {
		var batch []telemetry.Sample
		for n := 0; n < 4; n++ {
			batch = append(batch, powerSample(topology.NodeID(n), int64(w*10), 100))
		}
		p.Ingest(batch)
	}
	<-done
	p.Close()
}

// TestConfigValidation: a pipeline needs a positive node count; defaults
// fill everything else.
func TestConfigValidation(t *testing.T) {
	if _, err := NewPipeline(Config{}); err == nil {
		t.Error("zero-node pipeline accepted")
	}
	p := mustPipeline(t, Config{Nodes: 1})
	defer p.Close()
	if p.cfg.StepSec != 10 || p.cfg.Shards != 1 || p.cfg.QueueDepth != 256 {
		t.Errorf("defaults = step %d shards %d queue %d", p.cfg.StepSec, p.cfg.Shards, p.cfg.QueueDepth)
	}
	if p.edges.Threshold() != 868 {
		t.Errorf("1-node edge threshold = %v, want 868", p.edges.Threshold())
	}
}
