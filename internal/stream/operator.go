package stream

import (
	"repro/internal/core"
	"repro/internal/tsagg"
)

// Frame is one finalized event-time window of the whole system: the merged
// output of every shard for one coarsening interval. The pipeline reuses a
// single Frame across Apply calls; operators must copy anything they keep.
type Frame struct {
	Start int64 // window start (unix seconds, grid-aligned)
	Step  int64 // window length in seconds
	// Observed counts the nodes with an input-power window this frame. A
	// frame with Observed == 0 is a telemetry gap: the grid slot exists
	// (so downstream NaN handling matches the offline series) but carries
	// no data.
	Observed int
	// NodePower holds the per-node input-power window statistics, indexed
	// by node ID; Count == 0 marks a node absent this window.
	NodePower []tsagg.WindowStat
	// BandGPUs counts GPU core-temperature channels per thermal band
	// (integer counts; core.TempBandOf of each channel's window mean).
	BandGPUs [core.NumTempBands]int64
}

// Operator is one incremental analysis in the pipeline. Apply observes
// finalized frames in strictly ascending event time; Flush runs once after
// the last frame when the pipeline closes. Both are called from the merge
// goroutine under the pipeline's snapshot lock, so implementations need no
// locking of their own but must stay cheap.
type Operator interface {
	Name() string
	Apply(f *Frame)
	Flush()
}
