package trace

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/workload"
)

const header = "job_id,user,project,submit,start,end,nodes,walltime,class,power_w\n"

func mustParse(t *testing.T, csv string) []Row {
	t.Helper()
	rows, err := ParseCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatalf("ParseCSV: %v", err)
	}
	return rows
}

func TestParseCSVBasic(t *testing.T) {
	rows := mustParse(t, header+
		"1,alice,ASTRO1,1000,1060,4660,4,7200,gpu_phasic,\n"+
		"2,bob,CHEM2,2000,2000,5600,2,,,1500\n")
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	r := rows[0]
	if r.ID != 1 || r.User != "alice" || r.Project != "ASTRO1" ||
		r.Submit != 1000 || r.Start != 1060 || r.End != 4660 ||
		r.Nodes != 4 || r.Walltime != 7200 || r.Class != "gpu_phasic" {
		t.Errorf("row 0 parsed wrong: %+v", r)
	}
	if rows[1].PowerW != 1500 || rows[1].Class != "" {
		t.Errorf("row 1 parsed wrong: %+v", rows[1])
	}
}

func TestParseCSVEmpty(t *testing.T) {
	if _, err := ParseCSV(strings.NewReader("")); !errors.Is(err, ErrTrace) {
		t.Errorf("empty input err = %v, want ErrTrace", err)
	}
	// A header-only trace parses to zero rows; conversion then rejects it.
	rows := mustParse(t, header)
	if len(rows) != 0 {
		t.Fatalf("header-only trace gave %d rows", len(rows))
	}
	if _, _, err := Jobs(rows, Options{MaxNodes: 8}); !errors.Is(err, ErrTrace) {
		t.Errorf("no-rows Jobs err = %v, want ErrTrace", err)
	}
}

func TestParseCSVMissingNodesColumn(t *testing.T) {
	_, err := ParseCSV(strings.NewReader("job_id,submit,end\n1,5,10\n"))
	if !errors.Is(err, ErrTrace) || !strings.Contains(err.Error(), "nodes") {
		t.Errorf("missing nodes column err = %v", err)
	}
}

func TestParseCSVDuplicateColumn(t *testing.T) {
	_, err := ParseCSV(strings.NewReader("nodes,node_count\n1,2\n"))
	if !errors.Is(err, ErrTrace) {
		t.Errorf("duplicate column err = %v, want ErrTrace", err)
	}
}

func TestParseCSVTrailingComma(t *testing.T) {
	// One trailing empty field beyond the header width is the common
	// exporter artifact and must be tolerated...
	rows := mustParse(t, "job_id,nodes,submit,duration\n1,4,1000,600,\n")
	if len(rows) != 1 || rows[0].Nodes != 4 {
		t.Fatalf("trailing comma row parsed wrong: %+v", rows)
	}
	// ...but a genuinely short row is an error naming the line.
	_, err := ParseCSV(strings.NewReader("job_id,nodes,submit,duration\n1,4\n"))
	if !errors.Is(err, ErrTrace) || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("short row err = %v", err)
	}
	// Two extra fields overflow, trailing-empty or not.
	_, err = ParseCSV(strings.NewReader("job_id,nodes,submit,duration\n1,4,1000,600,,\n"))
	if !errors.Is(err, ErrTrace) {
		t.Errorf("overflow row err = %v, want ErrTrace", err)
	}
}

func TestParseCSVBadCell(t *testing.T) {
	_, err := ParseCSV(strings.NewReader(header + "x,alice,P,1,1,2,4,,,\n"))
	if !errors.Is(err, ErrTrace) || !strings.Contains(err.Error(), "job_id") {
		t.Errorf("bad integer cell err = %v", err)
	}
	_, err = ParseCSV(strings.NewReader(header + "1,alice,P,1,1,2,4,,,watts\n"))
	if !errors.Is(err, ErrTrace) || !strings.Contains(err.Error(), "power") {
		t.Errorf("bad power cell err = %v", err)
	}
}

func TestParseCSVComments(t *testing.T) {
	rows := mustParse(t, "# a comment\n"+header+"# another\n1,a,P,1000,1000,2000,2,,,\n")
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
}

func TestParseJSON(t *testing.T) {
	rows, err := ParseJSON(strings.NewReader(
		`[{"job_id":7,"nodes":3,"submit":100,"duration":50,"class":"cpu_heavy"}]`))
	if err != nil {
		t.Fatalf("ParseJSON: %v", err)
	}
	if len(rows) != 1 || rows[0].ID != 7 || rows[0].Nodes != 3 || rows[0].Class != "cpu_heavy" {
		t.Errorf("parsed wrong: %+v", rows)
	}
	if _, err := ParseJSON(strings.NewReader(`[{"nodes":1,"bogus":2}]`)); !errors.Is(err, ErrTrace) {
		t.Errorf("unknown field err = %v, want ErrTrace", err)
	}
}

func TestJobsUnsortedRowsDeterministicOrder(t *testing.T) {
	rows := []Row{
		{ID: 3, Nodes: 1, Submit: 3000, Duration: 60},
		{ID: 1, Nodes: 1, Submit: 1000, Duration: 60},
		{ID: 5, Nodes: 1, Submit: 1000, Duration: 60}, // ties on submit: ID breaks
		{ID: 2, Nodes: 1, Submit: 2000, Duration: 60},
	}
	jobs, _, err := Jobs(rows, Options{MaxNodes: 4})
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	want := []int64{1, 5, 2, 3}
	for i, j := range jobs {
		if j.ID != want[i] {
			t.Fatalf("job order %d = ID %d, want %d", i, j.ID, want[i])
		}
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i].SubmitTime < jobs[i-1].SubmitTime {
			t.Fatalf("jobs not sorted by submit at %d", i)
		}
	}
}

func TestJobsExceedingCapacity(t *testing.T) {
	rows := []Row{{ID: 1, Nodes: 100, Submit: 1000, Duration: 60}}
	if _, _, err := Jobs(rows, Options{MaxNodes: 64}); !errors.Is(err, ErrTrace) {
		t.Errorf("oversized job err = %v, want ErrTrace", err)
	}
	if _, _, err := Jobs(rows, Options{}); !errors.Is(err, ErrTrace) {
		t.Errorf("zero capacity err = %v, want ErrTrace", err)
	}
}

func TestJobsZeroDurationDropped(t *testing.T) {
	rows := []Row{
		{ID: 1, Nodes: 1, Submit: 1000, Duration: 60},
		{ID: 2, Nodes: 1, Submit: 1000, Start: 1000, End: 1000}, // zero runtime
		{ID: 3, Nodes: 1, Submit: 2000, Duration: 0, End: 0},    // no end at all
	}
	jobs, st, err := Jobs(rows, Options{MaxNodes: 4})
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	if len(jobs) != 1 || st.ZeroDuration != 2 || st.Jobs != 1 {
		t.Errorf("jobs %d, stats %+v; want 1 job, 2 zero-duration", len(jobs), st)
	}
}

func TestJobsRebaseAndHorizon(t *testing.T) {
	rows := []Row{
		{ID: 1, Nodes: 2, Submit: 1_000_000, Duration: 600},
		{ID: 2, Nodes: 2, Submit: 1_000_500, Duration: 600},
		{ID: 3, Nodes: 2, Submit: 1_009_999, Duration: 600}, // beyond horizon
	}
	jobs, st, err := Jobs(rows, Options{MaxNodes: 8, StartTime: 5000, HorizonSec: 3600})
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	if st.RebaseShiftSec != 5000-1_000_000 {
		t.Errorf("rebase shift = %d", st.RebaseShiftSec)
	}
	if len(jobs) != 2 || st.BeyondHorizon != 1 {
		t.Fatalf("jobs %d beyond %d, want 2 and 1", len(jobs), st.BeyondHorizon)
	}
	if jobs[0].SubmitTime != 5000 || jobs[1].SubmitTime != 5500 {
		t.Errorf("rebased submits = %d, %d", jobs[0].SubmitTime, jobs[1].SubmitTime)
	}
	if jobs[0].Duration != 600 {
		t.Errorf("duration changed by rebase: %d", jobs[0].Duration)
	}
}

func TestJobsInvalidRows(t *testing.T) {
	cases := []struct {
		name string
		row  Row
	}{
		{"no nodes", Row{Submit: 1, Duration: 60}},
		{"no times", Row{Nodes: 1, Duration: 60}},
		{"start before submit", Row{Nodes: 1, Submit: 100, Start: 50, Duration: 60}},
		{"end before start", Row{Nodes: 1, Submit: 100, Start: 100, End: 40}},
	}
	for _, c := range cases {
		if _, _, err := Jobs([]Row{c.row}, Options{MaxNodes: 4}); !errors.Is(err, ErrTrace) {
			t.Errorf("%s: err = %v, want ErrTrace", c.name, err)
		}
	}
}

func TestJobsProfileResolution(t *testing.T) {
	rows := []Row{
		{ID: 1, Nodes: 1, Submit: 1000, Duration: 600, Class: "gpu_phasic"},
		{ID: 2, Nodes: 1, Submit: 1001, Duration: 600, PowerW: 1500},
		{ID: 3, Nodes: 1, Submit: 1002, Duration: 600}, // neither: hashed archetype
	}
	jobs, _, err := Jobs(rows, Options{MaxNodes: 4, Seed: 42})
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	want, _ := workload.ArchetypeByName("gpu_phasic")
	if jobs[0].Profile != want.Profile {
		t.Errorf("class-tagged job got profile %+v", jobs[0].Profile)
	}
	if jobs[1].Profile.SwingFrac != 0 || jobs[1].Profile.Duty != 1 {
		t.Errorf("power-hint job profile not flat: %+v", jobs[1].Profile)
	}
	if !jobs[2].Profile.Valid() {
		t.Errorf("hashed archetype profile invalid: %+v", jobs[2].Profile)
	}
	// The untagged draw is deterministic in (seed, ID).
	again, _, err := Jobs(rows, Options{MaxNodes: 4, Seed: 42})
	if err != nil {
		t.Fatalf("Jobs again: %v", err)
	}
	if jobs[2].Profile != again[2].Profile {
		t.Errorf("hashed archetype not deterministic")
	}
}

func TestJobsPeakConcurrency(t *testing.T) {
	rows := []Row{
		{ID: 1, Nodes: 4, Submit: 10, Start: 10, End: 110},
		{ID: 2, Nodes: 4, Submit: 10, Start: 60, End: 160},
		{ID: 3, Nodes: 4, Submit: 10, Start: 110, End: 210}, // 1 ends exactly as 3 starts
	}
	_, st, err := Jobs(rows, Options{MaxNodes: 8})
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	if st.PeakNodes != 8 {
		t.Errorf("peak = %d, want 8 (release-before-claim at boundaries)", st.PeakNodes)
	}
}

func TestJobsIDOffsetAndDefaults(t *testing.T) {
	rows := []Row{{Nodes: 2, Submit: 1000, Duration: 600, Walltime: 100}}
	jobs, _, err := Jobs(rows, Options{MaxNodes: 4, IDOffset: 1 << 20})
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	j := jobs[0]
	if j.ID != 1+1<<20 {
		t.Errorf("ID = %d, want offset row order", j.ID)
	}
	if j.Project != "TRACE" || j.User == "" {
		t.Errorf("defaults not applied: %+v", j)
	}
	if j.WalltimeReq != 600 { // requested walltime below runtime is raised
		t.Errorf("walltime = %d, want 600", j.WalltimeReq)
	}
}

func TestBuiltinSample(t *testing.T) {
	rows, err := BuiltinSample()
	if err != nil {
		t.Fatalf("BuiltinSample: %v", err)
	}
	if len(rows) < 30 {
		t.Fatalf("sample has %d rows, want a realistic population", len(rows))
	}
	jobs, st, err := Jobs(rows, Options{MaxNodes: 64, StartTime: 1_577_836_800, Seed: 2020})
	if err != nil {
		t.Fatalf("sample conversion: %v", err)
	}
	if st.ZeroDuration != 2 {
		t.Errorf("sample zero-duration rows = %d, want 2", st.ZeroDuration)
	}
	// Peak concurrency reflects the source machine's schedule; it may
	// exceed the replay capacity (the sim scheduler queues), so it is
	// reported as a statistic rather than enforced.
	if st.PeakNodes <= 0 {
		t.Errorf("sample peak nodes = %d, want > 0", st.PeakNodes)
	}
	for i, j := range jobs {
		if j.Nodes <= 0 || j.Duration <= 0 || !j.Profile.Valid() {
			t.Fatalf("sample job %d invalid: %+v", i, j)
		}
	}
	// The builtin bytes accessor returns a defensive copy.
	b := BuiltinSampleBytes()
	b[0] ^= 0xff
	if b2 := BuiltinSampleBytes(); b2[0] == b[0] {
		t.Error("BuiltinSampleBytes aliases the embedded data")
	}
}

// FuzzParseTrace drives the CSV parser with arbitrary inputs: it must
// never panic, and whatever parses must convert without panicking either.
func FuzzParseTrace(f *testing.F) {
	f.Add(header + "1,a,P,1000,1060,4660,4,7200,gpu_phasic,\n")
	f.Add(header)
	f.Add("job_id,nodes\n1,1\n")
	f.Add("nodes\n1,\n")
	f.Add("# comment\nnodes,duration,submit\n3,60,5\n")
	f.Add(string(BuiltinSampleBytes()))
	f.Fuzz(func(t *testing.T, input string) {
		rows, err := ParseCSV(strings.NewReader(input))
		if err != nil {
			if !errors.Is(err, ErrTrace) {
				t.Fatalf("non-ErrTrace parse error: %v", err)
			}
			return
		}
		jobs, _, err := Jobs(rows, Options{MaxNodes: 64, StartTime: 1000, HorizonSec: 86400})
		if err != nil {
			return
		}
		for i := 1; i < len(jobs); i++ {
			if jobs[i].SubmitTime < jobs[i-1].SubmitTime {
				t.Fatalf("converted jobs unsorted at %d", i)
			}
		}
	})
}
