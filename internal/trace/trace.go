// Package trace ingests external job schedules — CSV or JSON traces of a
// real system's scheduler log — and converts them into the simulator's
// workload form, so the twin replays recorded campaigns instead of (or
// mixed with) the calibrated synthetic generator. Following the MIT
// SuperCloud trace-replay methodology, a replayed trace is rebased onto
// the simulated span and driven through the same scheduler as generated
// jobs: the trace supplies submit times, sizes and application behaviour;
// the twin supplies placement, power, thermals and failures.
//
// # Column mapping
//
// A trace is a table with one row per job. CSV traces carry a header row;
// JSON traces are an array of objects. Recognized columns (aliases in
// parentheses; times are unix seconds):
//
//	job_id   (id)                  optional  stable job identity; default row order
//	user                           optional
//	project                        optional  also selects the simulated science domain
//	submit   (submit_time)         *         submit time; defaults to start
//	start    (start_time, begin)   *         recorded start; defaults to submit
//	end      (end_time)            *         recorded end; or use duration
//	duration (duration_sec)        *         alternative to end
//	nodes    (node_count)          required  allocation size
//	walltime (walltime_sec, req)   optional  requested walltime; default duration
//	class    (app_class, app)      optional  application archetype tag
//	power    (power_w, power_hint_w) optional mean node power hint, watts
//
// (*) every row needs at least one of submit/start and one of
// end/duration. Rows with an application-class tag replay that archetype's
// power profile; rows with only a power hint replay a flat profile
// matching the hinted mean node power; rows with neither draw a
// deterministic archetype from the job identity.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/units"
	"repro/internal/workload"
)

// ErrTrace marks an invalid trace file or row; specific violations wrap it.
var ErrTrace = errors.New("trace: invalid trace")

// Row is one parsed trace record, before conversion to a workload job.
// Zero-valued optional fields mean "absent".
type Row struct {
	ID       int64   `json:"job_id,omitempty"`
	User     string  `json:"user,omitempty"`
	Project  string  `json:"project,omitempty"`
	Submit   int64   `json:"submit,omitempty"`
	Start    int64   `json:"start,omitempty"`
	End      int64   `json:"end,omitempty"`
	Duration int64   `json:"duration,omitempty"`
	Nodes    int     `json:"nodes"`
	Walltime int64   `json:"walltime,omitempty"`
	Class    string  `json:"class,omitempty"`
	PowerW   float64 `json:"power_w,omitempty"`
}

// column indexes the recognized header names onto Row fields.
type column int

const (
	colID column = iota
	colUser
	colProject
	colSubmit
	colStart
	colEnd
	colDuration
	colNodes
	colWalltime
	colClass
	colPower
	colUnknown
)

// columnOf resolves a header cell (case-insensitive, trimmed) to a column.
func columnOf(name string) column {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "job_id", "id":
		return colID
	case "user":
		return colUser
	case "project":
		return colProject
	case "submit", "submit_time":
		return colSubmit
	case "start", "start_time", "begin":
		return colStart
	case "end", "end_time":
		return colEnd
	case "duration", "duration_sec":
		return colDuration
	case "nodes", "node_count":
		return colNodes
	case "walltime", "walltime_sec", "req":
		return colWalltime
	case "class", "app_class", "app":
		return colClass
	case "power", "power_w", "power_hint_w":
		return colPower
	default:
		return colUnknown
	}
}

// ParseCSV reads a header-mapped CSV trace. Lines starting with '#' are
// comments. A single trailing empty field (the trailing-comma artifact
// common in exported scheduler logs) is tolerated; genuinely short rows
// are an error naming the offending line.
func ParseCSV(r io.Reader) ([]Row, error) {
	cr := csv.NewReader(r)
	cr.Comment = '#'
	cr.FieldsPerRecord = -1 // row widths validated against the header below
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("%w: empty trace (no header)", ErrTrace)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTrace, err)
	}
	cols := make([]column, len(header))
	seen := map[column]bool{}
	for i, h := range header {
		c := columnOf(h)
		cols[i] = c
		if c == colUnknown {
			continue
		}
		if seen[c] {
			return nil, fmt.Errorf("%w: duplicate column %q", ErrTrace, h)
		}
		seen[c] = true
	}
	if !seen[colNodes] {
		return nil, fmt.Errorf("%w: missing required column nodes", ErrTrace)
	}
	var rows []Row
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrTrace, line, err)
		}
		if len(rec) == len(header)+1 && rec[len(rec)-1] == "" {
			rec = rec[:len(rec)-1] // trailing comma
		}
		if len(rec) < len(header) {
			return nil, fmt.Errorf("%w: line %d: %d field(s), header has %d",
				ErrTrace, line, len(rec), len(header))
		}
		if len(rec) > len(header) {
			return nil, fmt.Errorf("%w: line %d: %d field(s) overflow the %d-column header",
				ErrTrace, line, len(rec), len(header))
		}
		var row Row
		for i, cell := range rec {
			if err := setField(&row, cols[i], cell); err != nil {
				return nil, fmt.Errorf("%w: line %d column %q: %v",
					ErrTrace, line, header[i], err)
			}
		}
		rows = append(rows, row)
	}
}

// setField parses one cell into its Row field. Empty cells leave the
// zero value (absent).
func setField(row *Row, c column, cell string) error {
	cell = strings.TrimSpace(cell)
	if cell == "" || c == colUnknown {
		return nil
	}
	switch c {
	case colUser:
		row.User = cell
		return nil
	case colProject:
		row.Project = cell
		return nil
	case colClass:
		row.Class = cell
		return nil
	case colPower:
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return fmt.Errorf("bad power %q", cell)
		}
		row.PowerW = v
		return nil
	}
	v, err := strconv.ParseInt(cell, 10, 64)
	if err != nil {
		return fmt.Errorf("bad integer %q", cell)
	}
	switch c {
	case colID:
		row.ID = v
	case colSubmit:
		row.Submit = v
	case colStart:
		row.Start = v
	case colEnd:
		row.End = v
	case colDuration:
		row.Duration = v
	case colNodes:
		row.Nodes = int(v)
	case colWalltime:
		row.Walltime = v
	}
	return nil
}

// ParseJSON reads a JSON trace: an array of objects with the Row field
// names of the column mapping.
func ParseJSON(r io.Reader) ([]Row, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var rows []Row
	if err := dec.Decode(&rows); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTrace, err)
	}
	return rows, nil
}

// Options parameterizes the Row → workload.Job conversion.
type Options struct {
	// MaxNodes is the simulated system size; any single job above it is
	// rejected (it could never schedule).
	MaxNodes int
	// StartTime, when non-zero, rebases the trace: every submit time is
	// shifted so the earliest submit lands exactly on StartTime. A 2019
	// trace then replays onto any simulated span.
	StartTime int64
	// HorizonSec, when positive, clips the (rebased) trace to the span:
	// jobs submitting at or after StartTime+HorizonSec are dropped. Jobs
	// may still run past the horizon, exactly as generated jobs do.
	HorizonSec int64
	// Seed keys the deterministic archetype assignment for rows carrying
	// neither an application class nor a power hint.
	Seed uint64
	// IDOffset shifts every job ID, keeping replayed identities disjoint
	// from a generated population when the two are mixed.
	IDOffset int64
}

// Stats summarizes a conversion: what was kept, dropped, and the trace's
// recorded concurrency against the configured capacity.
type Stats struct {
	Rows           int   // parsed input rows
	Jobs           int   // jobs produced
	ZeroDuration   int   // rows dropped for zero recorded runtime
	BeyondHorizon  int   // rows dropped by horizon clipping
	PeakNodes      int   // peak concurrent node demand of the recorded schedule
	RebaseShiftSec int64 // seconds the trace was shifted by rebasing
	SpanSec        int64 // submit-time span of the produced jobs
}

// Jobs converts parsed trace rows into a workload job population sorted by
// submit time with deterministic tie-breaking (submit, job ID, input
// order), validating sizes against the system capacity, rebasing onto the
// simulated span, and clipping to the horizon.
//
//lint:detroot
func Jobs(rows []Row, opt Options) ([]workload.Job, Stats, error) {
	var st Stats
	st.Rows = len(rows)
	if opt.MaxNodes <= 0 {
		return nil, st, fmt.Errorf("%w: non-positive capacity %d", ErrTrace, opt.MaxNodes)
	}
	type cand struct {
		row      Row
		order    int
		submit   int64
		duration int64
	}
	cands := make([]cand, 0, len(rows))
	for i, row := range rows {
		if row.Nodes <= 0 {
			return nil, st, fmt.Errorf("%w: row %d: non-positive nodes %d", ErrTrace, i+1, row.Nodes)
		}
		if row.Nodes > opt.MaxNodes {
			return nil, st, fmt.Errorf("%w: row %d: %d nodes exceed the %d-node system",
				ErrTrace, i+1, row.Nodes, opt.MaxNodes)
		}
		submit := row.Submit
		if submit == 0 {
			submit = row.Start
		}
		start := row.Start
		if start == 0 {
			start = submit
		}
		if submit == 0 && start == 0 {
			return nil, st, fmt.Errorf("%w: row %d: no submit or start time", ErrTrace, i+1)
		}
		if start < submit {
			return nil, st, fmt.Errorf("%w: row %d: start %d before submit %d",
				ErrTrace, i+1, start, submit)
		}
		dur := row.Duration
		if dur == 0 && row.End != 0 {
			dur = row.End - start
		}
		if dur < 0 {
			return nil, st, fmt.Errorf("%w: row %d: negative runtime (end %d before start %d)",
				ErrTrace, i+1, row.End, start)
		}
		if dur == 0 {
			st.ZeroDuration++
			continue
		}
		if row.ID == 0 {
			row.ID = int64(i + 1)
		}
		cands = append(cands, cand{row: row, order: i, submit: submit, duration: dur})
	}
	if len(cands) == 0 {
		return nil, st, fmt.Errorf("%w: no runnable jobs (of %d row(s), %d zero-duration)",
			ErrTrace, len(rows), st.ZeroDuration)
	}
	// The recorded schedule's peak concurrency, for capacity reporting:
	// sweep the start/end events of the rows as the source system ran them
	// (falling back to submit when the trace carries no recorded start).
	windows := make([]candTimes, len(cands))
	for i, c := range cands {
		start := c.row.Start
		if start == 0 {
			start = c.submit
		}
		windows[i] = candTimes{start: start, end: start + c.duration, nodes: c.row.Nodes}
	}
	st.PeakNodes = peakConcurrency(windows)
	// Rebase: shift so the earliest submit lands on StartTime.
	var shift int64
	if opt.StartTime != 0 {
		minSubmit := cands[0].submit
		for _, c := range cands[1:] {
			if c.submit < minSubmit {
				minSubmit = c.submit
			}
		}
		shift = opt.StartTime - minSubmit
	}
	st.RebaseShiftSec = shift
	kept := cands[:0]
	for _, c := range cands {
		c.submit += shift
		if opt.HorizonSec > 0 && c.submit >= opt.StartTime+opt.HorizonSec {
			st.BeyondHorizon++
			continue
		}
		kept = append(kept, c)
	}
	if len(kept) == 0 {
		return nil, st, fmt.Errorf("%w: horizon clipping dropped every job", ErrTrace)
	}
	sort.SliceStable(kept, func(a, b int) bool {
		if kept[a].submit != kept[b].submit {
			return kept[a].submit < kept[b].submit
		}
		if kept[a].row.ID != kept[b].row.ID {
			return kept[a].row.ID < kept[b].row.ID
		}
		return kept[a].order < kept[b].order
	})
	jobs := make([]workload.Job, len(kept))
	for i, c := range kept {
		row := c.row
		walltime := row.Walltime
		if walltime < c.duration {
			walltime = c.duration
		}
		user := row.User
		if user == "" {
			user = fmt.Sprintf("trace%03d", row.ID%1000)
		}
		project := row.Project
		if project == "" {
			project = "TRACE"
		}
		jobs[i] = workload.Job{
			ID:          row.ID + opt.IDOffset,
			User:        user,
			Project:     project,
			Domain:      domainFor(project),
			Class:       units.ClassForNodes(row.Nodes),
			Nodes:       row.Nodes,
			SubmitTime:  c.submit,
			WalltimeReq: walltime,
			Duration:    c.duration,
			Profile:     profileFor(row, opt.Seed),
		}
	}
	st.Jobs = len(jobs)
	st.SpanSec = jobs[len(jobs)-1].SubmitTime - jobs[0].SubmitTime
	return jobs, st, nil
}

// candTimes is the minimal view peakConcurrency needs.
type candTimes struct {
	start, end int64
	nodes      int
}

// peakConcurrency sweeps the recorded schedule's start/end events and
// returns the peak simultaneous node demand.
func peakConcurrency(cs []candTimes) int {
	type event struct {
		t     int64
		delta int
	}
	evs := make([]event, 0, 2*len(cs))
	for _, c := range cs {
		evs = append(evs, event{c.start, c.nodes}, event{c.end, -c.nodes})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].t != evs[b].t {
			return evs[a].t < evs[b].t
		}
		return evs[a].delta < evs[b].delta // releases before claims at a boundary
	})
	cur, peak := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// domainFor assigns a stable science domain from the project label (FNV-1a
// over the string), so a project's jobs always land in one domain.
func domainFor(project string) workload.Domain {
	h := fnv.New64a()
	h.Write([]byte(project))
	return workload.Domain(h.Sum64() % uint64(workload.NumDomains))
}

// profileFor resolves a row's power profile: the tagged archetype when
// present, a flat profile matching the power hint otherwise, and failing
// both a deterministic archetype keyed by (seed, job ID).
func profileFor(row Row, seed uint64) workload.Profile {
	if row.Class != "" {
		if a, ok := workload.ArchetypeByName(row.Class); ok {
			return a.Profile
		}
	}
	if row.PowerW > 0 {
		return workload.MeanPowerProfile(units.Watts(row.PowerW))
	}
	arch := workload.Archetypes()
	z := seed + uint64(row.ID)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return arch[z%uint64(len(arch))].Profile
}
