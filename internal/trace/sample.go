package trace

import (
	"bytes"
	_ "embed"
)

// BuiltinSampleName is the reserved trace path that resolves to the
// bundled sample trace instead of a file on disk: a synthetic 24-hour,
// 64-node scheduler log in the documented CSV column mapping, shipped so
// the scenario catalog's replay entries work without any external data.
const BuiltinSampleName = "builtin:summit-2020-sample"

//go:embed testdata/summit-2020-sample.csv
var builtinSampleCSV []byte

// BuiltinSampleBytes returns the bundled sample trace's raw CSV bytes.
// Scenario identity hashes cover trace content, so the bytes are part of
// the public surface, returned as a copy.
func BuiltinSampleBytes() []byte {
	return append([]byte(nil), builtinSampleCSV...)
}

// BuiltinSample parses the bundled sample trace.
func BuiltinSample() ([]Row, error) {
	return ParseCSV(bytes.NewReader(builtinSampleCSV))
}
