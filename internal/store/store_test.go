package store

import (
	"bytes"
	"math"
	"os"
	"testing"
	"testing/quick"
)

func sampleTable() *Table {
	n := 1000
	ts := make([]int64, n)
	power := make([]float64, n)
	temp := make([]float64, n)
	for i := 0; i < n; i++ {
		ts[i] = 1577836800 + int64(i*10)
		power[i] = 1500 + 400*math.Sin(float64(i)/25)
		temp[i] = 40 + 5*math.Sin(float64(i)/40)
	}
	return &Table{Cols: []Column{
		{Name: "timestamp", Ints: ts},
		{Name: "input_power.mean", Floats: power},
		{Name: "gpu0_core_temp.mean", Floats: temp},
	}}
}

func TestRoundTrip(t *testing.T) {
	tab := sampleTable()
	var buf bytes.Buffer
	if err := Write(&buf, tab); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tab.NumRows() || len(got.Cols) != len(tab.Cols) {
		t.Fatalf("shape mismatch")
	}
	for i := range tab.Cols {
		want, have := &tab.Cols[i], &got.Cols[i]
		if want.Name != have.Name || want.IsInt() != have.IsInt() {
			t.Fatalf("column %d metadata mismatch", i)
		}
		for j := 0; j < want.Len(); j++ {
			if want.IsInt() {
				if want.Ints[j] != have.Ints[j] {
					t.Fatalf("col %q row %d: %d != %d", want.Name, j, have.Ints[j], want.Ints[j])
				}
			} else if want.Floats[j] != have.Floats[j] { //lint:allow floatcompare codec round-trip must be lossless
				t.Fatalf("col %q row %d: %v != %v", want.Name, j, have.Floats[j], want.Floats[j])
			}
		}
	}
}

func TestRoundTripSpecialFloats(t *testing.T) {
	tab := &Table{Cols: []Column{{
		Name:   "x",
		Floats: []float64{0, math.NaN(), math.Inf(1), math.Inf(-1), -0.0, 1e-300, 1e300},
	}}}
	var buf bytes.Buffer
	if err := Write(&buf, tab); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range tab.Cols[0].Floats {
		have := got.Cols[0].Floats[j]
		if math.IsNaN(want) {
			if !math.IsNaN(have) {
				t.Fatalf("row %d: NaN lost", j)
			}
			continue
		}
		if math.Float64bits(want) != math.Float64bits(have) {
			t.Fatalf("row %d: bits differ", j)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(ints []int64, floats []float64) bool {
		n := len(ints)
		if len(floats) < n {
			n = len(floats)
		}
		tab := &Table{Cols: []Column{
			{Name: "i", Ints: append([]int64{}, ints[:n]...)},
			{Name: "f", Floats: append([]float64{}, floats[:n]...)},
		}}
		var buf bytes.Buffer
		if err := Write(&buf, tab); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		for j := 0; j < n; j++ {
			if got.Cols[0].Ints[j] != tab.Cols[0].Ints[j] {
				return false
			}
			if math.Float64bits(got.Cols[1].Floats[j]) != math.Float64bits(tab.Cols[1].Floats[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmptyTable(t *testing.T) {
	tab := &Table{Cols: []Column{{Name: "x", Floats: []float64{}}}}
	var buf bytes.Buffer
	if err := Write(&buf, tab); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 {
		t.Errorf("rows = %d", got.NumRows())
	}
	// Entirely empty table.
	var buf2 bytes.Buffer
	if err := Write(&buf2, &Table{}); err != nil {
		t.Fatal(err)
	}
	if got, err := Read(&buf2); err != nil || len(got.Cols) != 0 {
		t.Errorf("empty table round trip: %v, %v", got, err)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []*Table{
		{Cols: []Column{{Name: "", Floats: []float64{1}}}},
		{Cols: []Column{{Name: "a", Floats: []float64{1}}, {Name: "a", Floats: []float64{2}}}},
		{Cols: []Column{{Name: "a", Floats: []float64{1}}, {Name: "b", Floats: []float64{1, 2}}}},
		{Cols: []Column{{Name: "a", Ints: []int64{1}, Floats: []float64{1}}}},
	}
	for i, tab := range bad {
		if err := tab.Validate(); err == nil {
			t.Errorf("table %d validated", i)
		}
		var buf bytes.Buffer
		if err := Write(&buf, tab); err == nil {
			t.Errorf("table %d written", i)
		}
	}
}

func TestReadErrors(t *testing.T) {
	// Not gzip.
	if _, err := Read(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("junk accepted")
	}
	// Valid gzip, bad magic.
	var buf bytes.Buffer
	tab := &Table{Cols: []Column{{Name: "x", Floats: []float64{1}}}}
	if err := Write(&buf, tab); err != nil {
		t.Fatal(err)
	}
	// Truncated stream.
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestCol(t *testing.T) {
	tab := sampleTable()
	if tab.Col("timestamp") == nil || !tab.Col("timestamp").IsInt() {
		t.Error("Col lookup failed")
	}
	if tab.Col("nope") != nil {
		t.Error("Col returned non-existent column")
	}
}

func TestCompressionEffective(t *testing.T) {
	// Slowly-varying telemetry must compress far below raw size.
	tab := sampleTable()
	raw := tab.NumRows() * (8 + 8 + 8)
	var buf bytes.Buffer
	if err := Write(&buf, tab); err != nil {
		t.Fatal(err)
	}
	ratio := float64(buf.Len()) / float64(raw)
	if ratio > 0.7 {
		t.Errorf("compression ratio = %.2f, want < 0.7 (%d of %d bytes)",
			ratio, buf.Len(), raw)
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDataset(dir, "node-power")
	if err != nil {
		t.Fatal(err)
	}
	tab := sampleTable()
	for day := 0; day < 3; day++ {
		if err := ds.WriteDay(day, tab); err != nil {
			t.Fatal(err)
		}
	}
	days, err := ds.Days()
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 3 || days[0] != 0 || days[2] != 2 {
		t.Fatalf("days = %v", days)
	}
	got, err := ds.ReadDay(1)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tab.NumRows() {
		t.Error("day round trip lost rows")
	}
	size, err := ds.SizeOnDisk()
	if err != nil || size <= 0 {
		t.Errorf("size = %d, %v", size, err)
	}
}

func TestDatasetErrors(t *testing.T) {
	if _, err := NewDataset(t.TempDir(), ""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewDataset(t.TempDir(), "a/b"); err == nil {
		t.Error("slash name accepted")
	}
	ds, _ := NewDataset(t.TempDir(), "x")
	if err := ds.WriteDay(-1, &Table{}); err == nil {
		t.Error("negative day accepted")
	}
	if _, err := ds.ReadDay(7); err == nil {
		t.Error("missing day read succeeded")
	}
}

func TestDatasetIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	ds, _ := NewDataset(dir, "x")
	if err := ds.WriteDay(0, &Table{}); err != nil {
		t.Fatal(err)
	}
	// Drop junk files in the directory.
	for _, name := range []string{"README.md", "x-dayBAD.spwr", "y-day00001.spwr"} {
		if err := writeFile(dir, name); err != nil {
			t.Fatal(err)
		}
	}
	days, err := ds.Days()
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 1 || days[0] != 0 {
		t.Errorf("days = %v, want [0]", days)
	}
}

func writeFile(dir, name string) error {
	return writeBytes(dir+"/"+name, []byte("junk"))
}

func BenchmarkWriteTable(b *testing.B) {
	tab := sampleTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, tab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadTable(b *testing.B) {
	tab := sampleTable()
	var buf bytes.Buffer
	if err := Write(&buf, tab); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func writeBytes(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestAllCodecsRoundTrip(t *testing.T) {
	tab := sampleTable()
	for codec := Codec(0); codec < numCodecs; codec++ {
		var buf bytes.Buffer
		if err := WriteCodec(&buf, tab, codec); err != nil {
			t.Fatalf("codec %d: %v", codec, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("codec %d: %v", codec, err)
		}
		if got.NumRows() != tab.NumRows() {
			t.Fatalf("codec %d lost rows", codec)
		}
		for i := range tab.Cols {
			want, have := &tab.Cols[i], &got.Cols[i]
			for j := 0; j < want.Len(); j++ {
				if want.IsInt() {
					if want.Ints[j] != have.Ints[j] {
						t.Fatalf("codec %d col %d row %d int mismatch", codec, i, j)
					}
				} else if math.Float64bits(want.Floats[j]) != math.Float64bits(have.Floats[j]) {
					t.Fatalf("codec %d col %d row %d float mismatch", codec, i, j)
				}
			}
		}
	}
	if err := WriteCodec(&bytes.Buffer{}, tab, numCodecs); err == nil {
		t.Error("unknown codec accepted")
	}
}

func TestCodecSizeOrdering(t *testing.T) {
	// On slowly-varying telemetry the delta codec must beat raw, and both
	// gzipped forms must beat the uncompressed store codec.
	tab := sampleTable()
	size := func(c Codec) int {
		var buf bytes.Buffer
		if err := WriteCodec(&buf, tab, c); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	delta, raw, rawStore := size(CodecDelta), size(CodecRaw), size(CodecRawStore)
	if delta >= raw {
		t.Errorf("delta (%d) must beat raw (%d) on telemetry", delta, raw)
	}
	if raw >= rawStore {
		t.Errorf("gzip raw (%d) must beat store mode (%d)", raw, rawStore)
	}
}

func BenchmarkCodecAblation(b *testing.B) {
	tab := sampleTable()
	for codec, name := range map[Codec]string{
		CodecDelta: "delta-gzip", CodecRaw: "raw-gzip",
		CodecDeltaFast: "delta-fast", CodecRawStore: "raw-store",
	} {
		codec := codec
		b.Run(name, func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				if err := WriteCodec(&buf, tab, codec); err != nil {
					b.Fatal(err)
				}
				size = buf.Len()
			}
			b.ReportMetric(float64(size), "bytes")
		})
	}
}
