package store

import (
	"fmt"
	"math"
)

// CodecGorilla column payloads (this file) are the raw-speed encoding of the
// archive: integer columns store delta-of-delta zigzag uvarints and float
// columns store the Gorilla XOR scheme (Pelkonen et al., "Gorilla: a fast,
// scalable, in-memory time series database", VLDB 2015) with
// leading/trailing-zero windows, bit-packed. The container stays a gzip
// stream for format compatibility, but at store level (no compression), so
// the float stream is never deflate-coded: the bit packing *is* the
// compression, and decode cost is pure integer work instead of an inflate
// pass.
//
// Unlike the varint codecs, every CodecGorilla column payload is prefixed
// with its encoded byte length, so a reader can skip an unwanted column
// with one seek instead of walking its values — the property the streaming
// column iterator's column-selective reads are built on.

// gorillaMaxBytesPerValue bounds the encoded size of one float value: worst
// case is 2 control bits + 6 leading bits + 6 size bits + 64 payload bits
// < 10 bytes. The first value costs 8 bytes raw; +16 covers padding slack.
// Int delta-of-delta values are bounded by a 10-byte uvarint. Payload
// length claims beyond these bounds are rejected before any allocation.
const gorillaMaxBytesPerValue = 10

// --- bit writer ---

// bitWriter packs big-endian bits into a byte slice.
type bitWriter struct {
	buf  []byte
	cur  byte
	nCur uint // bits used in cur
}

func (w *bitWriter) writeBit(b uint64) {
	w.cur = w.cur<<1 | byte(b&1)
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// writeBits writes the low n bits of v, most significant first.
func (w *bitWriter) writeBits(v uint64, n uint) {
	for i := n; i > 0; i-- {
		w.writeBit(v >> (i - 1))
	}
}

// finish pads the last byte with zero bits and returns the payload.
func (w *bitWriter) finish() []byte {
	if w.nCur > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.nCur))
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// appendUvarint appends v as a uvarint without importing encoding/binary's
// scratch dance at every call site.
func appendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

func zigzag64(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// encodeGorillaFloats encodes vals as a Gorilla XOR bit stream, appending
// to dst.
func encodeGorillaFloats(dst []byte, vals []float64) []byte {
	w := bitWriter{buf: dst}
	var prev uint64
	// lead/sig describe the previous meaningful-bit window; sig == 0 marks
	// "no window yet", forcing the first non-zero XOR to encode one.
	var lead, sig uint
	for i, v := range vals {
		bits := math.Float64bits(v)
		if i == 0 {
			w.writeBits(bits, 64)
			prev = bits
			continue
		}
		xor := bits ^ prev
		prev = bits
		if xor == 0 {
			w.writeBit(0)
			continue
		}
		w.writeBit(1)
		l := uint(leadingZeros64(xor))
		if l > 63 {
			l = 63 // 6-bit field; xor != 0 so 63 leading zeros is the max anyway
		}
		t := uint(trailingZeros64(xor))
		s := 64 - l - t
		if sig > 0 && l >= lead && s <= sig && 64-lead-sig <= t {
			// Fits the previous window: reuse it.
			w.writeBit(0)
			w.writeBits(xor>>(64-lead-sig), sig)
			continue
		}
		lead, sig = l, s
		w.writeBit(1)
		w.writeBits(uint64(lead), 6)
		w.writeBits(uint64(sig-1), 6)
		w.writeBits(xor>>t, sig)
	}
	return w.finish()
}

// encodeGorillaInts appends vals as delta-of-delta zigzag uvarints: the
// first value raw (zigzagged), then first-order deltas for row 1, then
// second-order deltas. Regular time axes (constant cadence) collapse to a
// run of zero bytes.
func encodeGorillaInts(dst []byte, vals []int64) []byte {
	var prev, prevDelta int64
	for i, v := range vals {
		switch i {
		case 0:
			dst = appendUvarint(dst, zigzag64(v))
		case 1:
			prevDelta = v - prev
			dst = appendUvarint(dst, zigzag64(prevDelta))
		default:
			d := v - prev
			dst = appendUvarint(dst, zigzag64(d-prevDelta))
			prevDelta = d
		}
		prev = v
	}
	return dst
}

// leadingZeros64 / trailingZeros64 mirror math/bits without the import (the
// annotated decode loops below must only call into allowlisted packages,
// and sharing one implementation keeps encode and decode in lockstep).
func leadingZeros64(x uint64) int {
	n := 0
	for b := uint(32); b > 0; b >>= 1 {
		if x>>(64-b-uint(n)) == 0 {
			n += int(b)
		}
	}
	if x == 0 {
		return 64
	}
	return n
}

func trailingZeros64(x uint64) int {
	if x == 0 {
		return 64
	}
	n := 0
	for x&1 == 0 {
		n++
		x >>= 1
	}
	return n
}

// --- decoders ---

// gorillaFloatDecoder streams float64 values back out of one column
// payload. It is constructed once per column (Reset) and decodes in blocks
// so the iterator path never materializes the full column.
type gorillaFloatDecoder struct {
	buf    []byte
	bit    int // absolute bit cursor into buf
	prev   uint64
	lead   uint
	sig    uint
	row    int // rows decoded so far
	failed bool
}

// Reset points the decoder at a fresh payload.
func (d *gorillaFloatDecoder) Reset(payload []byte) {
	*d = gorillaFloatDecoder{buf: payload}
}

// DecodeBlock decodes up to len(dst) values, returning how many were
// produced. It returns 0 at a clean end of stream and -1 on a truncated or
// corrupt payload; Err converts that state into an addressable error. The
// loop is the innermost hot path of every cold column read: it walks a
// byte slice with shifts and masks only, so it stays transitively
// allocation-free.
//
//lint:allocfree
func (d *gorillaFloatDecoder) DecodeBlock(dst []float64, total int) int {
	if d.failed {
		return -1
	}
	n := 0
	bit, buf := d.bit, d.buf
	limit := len(buf) * 8
	for n < len(dst) && d.row < total {
		if d.row == 0 {
			if bit+64 > limit {
				d.failed = true
				return -1
			}
			v := readBits(buf, bit, 64)
			bit += 64
			d.prev = v
			dst[n] = math.Float64frombits(v)
			n++
			d.row++
			continue
		}
		if bit >= limit {
			d.failed = true
			return -1
		}
		if readBits(buf, bit, 1) == 0 {
			// Repeat of the previous value.
			bit++
			dst[n] = math.Float64frombits(d.prev)
			n++
			d.row++
			continue
		}
		bit++
		if bit >= limit {
			d.failed = true
			return -1
		}
		if readBits(buf, bit, 1) == 1 {
			// New leading/size window.
			bit++
			if bit+12 > limit {
				d.failed = true
				return -1
			}
			d.lead = uint(readBits(buf, bit, 6))
			d.sig = uint(readBits(buf, bit+6, 6)) + 1
			bit += 12
		} else {
			bit++
			if d.sig == 0 {
				// Window reuse before any window was defined.
				d.failed = true
				return -1
			}
		}
		if d.lead+d.sig > 64 || bit+int(d.sig) > limit {
			d.failed = true
			return -1
		}
		xor := readBits(buf, bit, int(d.sig)) << (64 - d.lead - d.sig)
		bit += int(d.sig)
		d.prev ^= xor
		dst[n] = math.Float64frombits(d.prev)
		n++
		d.row++
	}
	d.bit = bit
	return n
}

// Done reports whether every row has been decoded.
func (d *gorillaFloatDecoder) Done(total int) bool { return !d.failed && d.row >= total }

// readBits extracts n (1..64) bits starting at absolute bit offset off,
// most significant first. Callers bound off+n by the buffer length.
//
//lint:allocfree
func readBits(buf []byte, off, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		b := off + i
		v = v<<1 | uint64(buf[b>>3]>>(7-uint(b&7))&1)
	}
	return v
}

// gorillaIntDecoder streams int64 values out of a delta-of-delta payload.
type gorillaIntDecoder struct {
	buf    []byte
	pos    int
	prev   int64
	delta  int64
	row    int
	failed bool
}

// Reset points the decoder at a fresh payload.
func (d *gorillaIntDecoder) Reset(payload []byte) {
	*d = gorillaIntDecoder{buf: payload}
}

// DecodeBlock decodes up to len(dst) values, returning the count, 0 at end
// of stream, or -1 on truncation/corruption. The uvarint walk is inlined so
// the loop touches nothing but the payload slice and its own state.
//
//lint:allocfree
func (d *gorillaIntDecoder) DecodeBlock(dst []int64, total int) int {
	if d.failed {
		return -1
	}
	n := 0
	pos, buf := d.pos, d.buf
	for n < len(dst) && d.row < total {
		var u uint64
		var shift uint
		ok := false
		for pos < len(buf) {
			b := buf[pos]
			pos++
			if shift == 63 && b > 1 {
				d.failed = true
				return -1 // uvarint overflows 64 bits
			}
			u |= uint64(b&0x7f) << shift
			if b < 0x80 {
				ok = true
				break
			}
			shift += 7
			if shift > 63 {
				d.failed = true
				return -1
			}
		}
		if !ok {
			d.failed = true
			return -1
		}
		v := int64(u>>1) ^ -int64(u&1) // unzigzag
		switch d.row {
		case 0:
			d.prev = v
		case 1:
			d.delta = v
			d.prev += v
		default:
			d.delta += v
			d.prev += d.delta
		}
		dst[n] = d.prev
		n++
		d.row++
	}
	d.pos = pos
	return n
}

// Done reports whether every row has been decoded.
func (d *gorillaIntDecoder) Done(total int) bool { return !d.failed && d.row >= total }

// gorillaPayloadBound is the largest plausible payload for rows values;
// length claims beyond it are rejected before allocation.
func gorillaPayloadBound(rows int) uint64 {
	return uint64(rows)*gorillaMaxBytesPerValue + 16
}

// errTruncatedPayload builds the shared corrupt-payload error for a column.
func errTruncatedPayload(col string, row int) error {
	return fmt.Errorf("store: column %q row %d: gorilla payload truncated or corrupt", col, row)
}
