package store

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func stringTable() *Table {
	return &Table{Cols: []Column{
		{Name: "timestamp", Ints: []int64{100, 110, 120}},
		{Name: "cluster", Strs: []string{"summit-0", "", "frontier-1"}},
		{Name: "power", Floats: []float64{1.5, 2.5, 3.5}},
	}}
}

func TestStringColumnRoundTrip(t *testing.T) {
	for codec := Codec(0); codec < numCodecs; codec++ {
		tab := stringTable()
		var buf bytes.Buffer
		if err := WriteCodec(&buf, tab, codec); err != nil {
			t.Fatalf("codec %d: %v", codec, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("codec %d: %v", codec, err)
		}
		c := got.Col("cluster")
		if c == nil || !c.IsStr() {
			t.Fatalf("codec %d: cluster column missing or mistyped", codec)
		}
		for j, want := range tab.Col("cluster").Strs {
			if c.Strs[j] != want {
				t.Fatalf("codec %d row %d: %q != %q", codec, j, c.Strs[j], want)
			}
		}
		if got.Col("timestamp").Ints[2] != 120 || got.Col("power").Floats[2] != 3.5 { //lint:allow floatcompare codec round-trip must be lossless
			t.Fatalf("codec %d: numeric columns corrupted by string neighbor", codec)
		}
	}
}

// headerVersion decodes the format version of a written table.
func headerVersion(t *testing.T, b []byte) uint64 {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer zr.Close()
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(zr, head); err != nil {
		t.Fatal(err)
	}
	br := bytes.NewBuffer(nil)
	if _, err := io.CopyN(br, zr, 10); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		t.Fatal(err)
	}
	return ver
}

// TestStringVersionGating pins the compatibility contract: tables without
// string columns keep writing format version 2 (older readers still work,
// existing archives stay byte-identical); only a table that actually holds
// a string column is bumped to version 3.
func TestStringVersionGating(t *testing.T) {
	var numeric, withStr bytes.Buffer
	if err := Write(&numeric, sampleTable()); err != nil {
		t.Fatal(err)
	}
	if err := Write(&withStr, stringTable()); err != nil {
		t.Fatal(err)
	}
	if v := headerVersion(t, numeric.Bytes()); v != version {
		t.Fatalf("numeric table wrote version %d, want %d", v, version)
	}
	if v := headerVersion(t, withStr.Bytes()); v != versionStrings {
		t.Fatalf("string table wrote version %d, want %d", v, versionStrings)
	}
}

// TestStringColumnSkip exercises the skip path: a column-selective read
// that does not ask for the string column must walk past it correctly
// under both the delta and raw codecs.
func TestStringColumnSkip(t *testing.T) {
	for _, codec := range []Codec{CodecDelta, CodecRaw} {
		var buf bytes.Buffer
		if err := WriteCodec(&buf, stringTable(), codec); err != nil {
			t.Fatal(err)
		}
		got, err := ReadColumns(&buf, []string{"power"})
		if err != nil {
			t.Fatalf("codec %d: %v", codec, err)
		}
		if len(got.Cols) != 1 || got.Col("power") == nil {
			t.Fatalf("codec %d: selective read got %d cols", codec, len(got.Cols))
		}
		if got.Col("power").Floats[1] != 2.5 { //lint:allow floatcompare codec round-trip must be lossless
			t.Fatalf("codec %d: value corrupted after string skip", codec)
		}
	}
}

func TestStringTooLongRejected(t *testing.T) {
	tab := &Table{Cols: []Column{{Name: "s", Strs: []string{strings.Repeat("x", maxStrLen+1)}}}}
	var buf bytes.Buffer
	if err := Write(&buf, tab); err == nil {
		t.Fatal("oversized string value accepted")
	}
}

func TestValidateRejectsMultiTyped(t *testing.T) {
	tab := &Table{Cols: []Column{{Name: "x", Ints: []int64{1}, Strs: []string{"a"}}}}
	if err := tab.Validate(); err == nil {
		t.Fatal("column with two typed slices accepted")
	}
}

// TestDayMetaSeesStringColumns checks that the metadata scan reports string
// columns with Str set and skips their data correctly.
func TestDayMetaSeesStringColumns(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDataset(dir, "run-meta")
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteDay(0, stringTable()); err != nil {
		t.Fatal(err)
	}
	dm, err := ds.DayMeta(0)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, ci := range dm.Columns {
		if ci.Name == "cluster" {
			found = true
			if !ci.Str || ci.Int {
				t.Fatalf("cluster column info mistyped: %+v", ci)
			}
		}
	}
	if !found {
		t.Fatal("string column missing from DayMeta")
	}
	if !dm.HasTime || dm.MinTime != 100 || dm.MaxTime != 120 {
		t.Fatalf("time span wrong: %+v", dm)
	}
}

func TestTableBytesCountsStringBytes(t *testing.T) {
	small := &Table{Cols: []Column{{Name: "s", Strs: []string{"a", "b"}}}}
	big := &Table{Cols: []Column{{Name: "s", Strs: []string{strings.Repeat("x", 1000), "b"}}}}
	if TableBytes(big) <= TableBytes(small) {
		t.Fatalf("string bytes not accounted: big %d <= small %d", TableBytes(big), TableBytes(small))
	}
}
