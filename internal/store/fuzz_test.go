package store

import (
	"bytes"
	"testing"
)

// fuzzSeedTable builds a small but realistic day partition: an integer
// timestamp column at the archive's 10s cadence plus two float telemetry
// columns shaped like node power and water temperature.
func fuzzSeedTable() *Table {
	const n = 256
	ts := make([]int64, n)
	power := make([]float64, n)
	temp := make([]float64, n)
	for i := 0; i < n; i++ {
		ts[i] = int64(i * 10)
		power[i] = 8.5e6 + float64(i%32)*1e3
		temp[i] = 21.0 + float64(i%7)*0.25
	}
	return &Table{Cols: []Column{
		{Name: "timestamp", Ints: ts},
		{Name: "power_w", Floats: power},
		{Name: "mtw_supply_c", Floats: temp},
	}}
}

// FuzzReadDayColumns feeds arbitrary bytes through the full column-read
// path — header parse, per-column decode, column-subset skip, and the
// metadata scan — and requires malformed input to come back as errors, never
// panics or runaway allocations. The seed corpus is a genuinely encoded day
// under every codec, plus truncated and bit-flipped variants so the fuzzer
// starts past the gzip and magic-number gates.
func FuzzReadDayColumns(f *testing.F) {
	tab := fuzzSeedTable()
	for codec := Codec(0); codec < numCodecs; codec++ {
		var buf bytes.Buffer
		if err := WriteCodec(&buf, tab, codec); err != nil {
			f.Fatal(err)
		}
		enc := buf.Bytes()
		f.Add(append([]byte(nil), enc...))
		f.Add(append([]byte(nil), enc[:len(enc)/2]...))
		flipped := append([]byte(nil), enc...)
		flipped[len(flipped)/3] ^= 0xff
		f.Add(flipped)
	}
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if tbl, err := ReadColumns(bytes.NewReader(data), nil); err == nil {
			// A table that decodes cleanly must also be self-consistent.
			if err := tbl.Validate(); err != nil {
				t.Fatalf("decoded table fails Validate: %v", err)
			}
		}
		_, _ = ReadColumns(bytes.NewReader(data), []string{"timestamp"})
		_, _ = readDayMeta(bytes.NewReader(data), 0, []string{"timestamp"})
	})
}
