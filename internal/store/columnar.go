// Package store implements the telemetry archive: a compact columnar table
// format with delta/XOR + varint encoding under gzip, and daily-partitioned
// dataset files. It stands in for the parquet archive of the paper's
// pipeline, whose lossless compression squeezed a 460k-metric/s stream to
// ~1 MB/s and a year of data to 8.5 TB.
package store

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Column is one named column of a table; at most one of Ints/Floats/Strs is
// set.
type Column struct {
	Name   string
	Ints   []int64
	Floats []float64
	Strs   []string
}

// IsInt reports whether the column is integer-typed. A column with no slice
// set is treated as an empty float column.
func (c *Column) IsInt() bool { return c.Ints != nil }

// IsStr reports whether the column is string-typed.
func (c *Column) IsStr() bool { return c.Strs != nil }

// Len returns the row count of the column.
func (c *Column) Len() int {
	switch {
	case c.IsInt():
		return len(c.Ints)
	case c.IsStr():
		return len(c.Strs)
	}
	return len(c.Floats)
}

// Table is a set of equal-length columns.
type Table struct {
	Cols []Column
}

// NumRows returns the row count (0 for an empty table).
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Len()
}

// Col returns the column with the given name, or nil.
func (t *Table) Col(name string) *Column {
	for i := range t.Cols {
		if t.Cols[i].Name == name {
			return &t.Cols[i]
		}
	}
	return nil
}

// Validate checks that all columns have equal length and unique names.
func (t *Table) Validate() error {
	seen := map[string]bool{}
	for i := range t.Cols {
		c := &t.Cols[i]
		if c.Name == "" {
			return fmt.Errorf("store: column %d unnamed", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("store: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
		typed := 0
		for _, set := range []bool{c.Ints != nil, c.Floats != nil, c.Strs != nil} {
			if set {
				typed++
			}
		}
		if typed > 1 {
			return fmt.Errorf("store: column %q has multiple types", c.Name)
		}
		if c.Len() != t.NumRows() {
			return fmt.Errorf("store: column %q has %d rows, want %d",
				c.Name, c.Len(), t.NumRows())
		}
	}
	return nil
}

// Format constants. Tables holding only numeric columns are written as
// version 2, the format every earlier build of this repository reads; a
// table with at least one string column (e.g. the run-meta manifest's
// cluster/site identity) is written as version 3. The reader accepts both,
// so numeric archives stay byte-identical across the version bump.
const (
	magic          = "SPWR" // Summit PoWeR archive
	version        = 2
	versionStrings = 3
	colInt         = byte(0)
	colFlt         = byte(1)
	colStr         = byte(2)

	// maxStrLen bounds one string value, on both the write and the decode
	// side: the length prefix in a partition file is attacker-controlled,
	// and a single claimed multi-gigabyte value must fail cleanly.
	maxStrLen = 1 << 20
)

// Codec selects the column encoding and compression level. The default
// (CodecDelta) is what the pipeline uses; the others exist for the
// compression ablation benchmarks and for interoperability tests.
type Codec uint8

// Codecs.
const (
	// CodecDelta: ints delta+zigzag+uvarint, floats XOR-prev+uvarint,
	// default gzip. The production choice.
	CodecDelta Codec = iota
	// CodecRaw: fixed-width little-endian values, default gzip.
	CodecRaw
	// CodecDeltaFast: delta/XOR encoding with gzip.BestSpeed.
	CodecDeltaFast
	// CodecRawStore: fixed-width values, gzip store mode (no compression).
	CodecRawStore
	// CodecGorilla: ints delta-of-delta + zigzag + uvarint, floats Gorilla
	// XOR with leading/trailing-zero windows (bit-packed), gzip store mode —
	// the bit packing replaces deflate, so decode skips the inflate pass.
	// Every column payload carries a byte-length prefix, so readers skip
	// unwanted columns in O(1) instead of walking their varints. See
	// gorilla.go.
	CodecGorilla
	numCodecs
)

func (c Codec) delta() bool { return c == CodecDelta || c == CodecDeltaFast }

func (c Codec) gzipLevel() int {
	switch c {
	case CodecDeltaFast:
		return gzip.BestSpeed
	case CodecRawStore, CodecGorilla:
		return gzip.NoCompression
	default:
		return gzip.DefaultCompression
	}
}

// Write serializes the table with the default codec: gzip(header +
// per-column encoded data). Integer columns are delta + zigzag + uvarint;
// float columns are XOR with the previous value + uvarint (a simplified
// Gorilla scheme), which compresses the slowly-changing telemetry well.
func Write(w io.Writer, t *Table) error {
	return WriteCodec(w, t, CodecDelta)
}

// WriteCodec serializes the table with an explicit codec.
func WriteCodec(w io.Writer, t *Table, codec Codec) error {
	if codec >= numCodecs {
		return fmt.Errorf("store: unknown codec %d", codec)
	}
	if err := t.Validate(); err != nil {
		return err
	}
	zw, err := gzip.NewWriterLevel(w, codec.gzipLevel())
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(zw)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	ver := uint64(version)
	for i := range t.Cols {
		if t.Cols[i].IsStr() {
			ver = versionStrings
			break
		}
	}
	if err := putUvarint(ver); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(codec)); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Cols))); err != nil {
		return err
	}
	if err := putUvarint(uint64(t.NumRows())); err != nil {
		return err
	}
	var gorillaBuf []byte // reused payload scratch for CodecGorilla columns
	for i := range t.Cols {
		c := &t.Cols[i]
		if err := putUvarint(uint64(len(c.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(c.Name); err != nil {
			return err
		}
		if codec == CodecGorilla {
			// Gorilla columns are encoded to a buffer first so the payload
			// can be length-prefixed (the basis of O(1) column skips).
			gorillaBuf = gorillaBuf[:0]
			switch {
			case c.IsStr():
				for _, v := range c.Strs {
					if len(v) > maxStrLen {
						return fmt.Errorf("store: column %q string value too long (%d bytes)", c.Name, len(v))
					}
					gorillaBuf = appendUvarint(gorillaBuf, uint64(len(v)))
					gorillaBuf = append(gorillaBuf, v...)
				}
				if err := bw.WriteByte(colStr); err != nil {
					return err
				}
			case c.IsInt():
				gorillaBuf = encodeGorillaInts(gorillaBuf, c.Ints)
				if err := bw.WriteByte(colInt); err != nil {
					return err
				}
			default:
				gorillaBuf = encodeGorillaFloats(gorillaBuf, c.Floats)
				if err := bw.WriteByte(colFlt); err != nil {
					return err
				}
			}
			if err := putUvarint(uint64(len(gorillaBuf))); err != nil {
				return err
			}
			if _, err := bw.Write(gorillaBuf); err != nil {
				return err
			}
			continue
		}
		if c.IsStr() {
			// Strings are length-prefixed raw bytes under every codec:
			// there is no delta structure to exploit, and gzip already
			// folds repeated values.
			if err := bw.WriteByte(colStr); err != nil {
				return err
			}
			for _, v := range c.Strs {
				if len(v) > maxStrLen {
					return fmt.Errorf("store: column %q string value too long (%d bytes)", c.Name, len(v))
				}
				if err := putUvarint(uint64(len(v))); err != nil {
					return err
				}
				if _, err := bw.WriteString(v); err != nil {
					return err
				}
			}
		} else if c.IsInt() {
			if err := bw.WriteByte(colInt); err != nil {
				return err
			}
			if codec.delta() {
				prev := int64(0)
				for _, v := range c.Ints {
					d := v - prev
					prev = v
					if err := putUvarint(zigzag(d)); err != nil {
						return err
					}
				}
			} else {
				var raw [8]byte
				for _, v := range c.Ints {
					binary.LittleEndian.PutUint64(raw[:], uint64(v))
					if _, err := bw.Write(raw[:]); err != nil {
						return err
					}
				}
			}
		} else {
			if err := bw.WriteByte(colFlt); err != nil {
				return err
			}
			if codec.delta() {
				prev := uint64(0)
				for _, v := range c.Floats {
					bits := math.Float64bits(v)
					if err := putUvarint(bits ^ prev); err != nil {
						return err
					}
					prev = bits
				}
			} else {
				var raw [8]byte
				for _, v := range c.Floats {
					binary.LittleEndian.PutUint64(raw[:], math.Float64bits(v))
					if _, err := bw.Write(raw[:]); err != nil {
						return err
					}
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return zw.Close()
}

// Read deserializes a table written by Write. It is ReadColumns with every
// column selected; the streaming Reader in reader.go is the single decode
// path.
func Read(r io.Reader) (*Table, error) {
	return ReadColumns(r, nil)
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
