package store

import (
	"bytes"
	"math"
	"testing"
)

// gorillaRoundTrip writes tab with CodecGorilla and reads it back whole.
func gorillaRoundTrip(t *testing.T, tab *Table) *Table {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCodec(&buf, tab, CodecGorilla); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestGorillaFloatEdgeCases(t *testing.T) {
	cases := map[string][]float64{
		"specials":    {0, math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 1e-300, 1e300, 5e-324},
		"constant":    {3.14, 3.14, 3.14, 3.14, 3.14},
		"alternating": {1, -1, 1, -1, 1, -1},
		"single":      {42.5},
		"zeros":       {0, 0, 0, 0},
		"ramp":        {1.0, 1.0000001, 1.0000002, 1.0000003},
		"widening":    {1, 1e300, 2, 1e-300, 3}, // forces repeated window renegotiation
		"narrow-wide": {1.5, 1.5000000001, -1e308, 1.5},
	}
	for name, vals := range cases {
		tab := &Table{Cols: []Column{{Name: "x", Floats: vals}}}
		got := gorillaRoundTrip(t, tab)
		for j, want := range vals {
			have := got.Cols[0].Floats[j]
			if math.Float64bits(want) != math.Float64bits(have) {
				t.Errorf("%s row %d: got bits %x want %x", name, j, math.Float64bits(have), math.Float64bits(want))
			}
		}
	}
}

func TestGorillaIntEdgeCases(t *testing.T) {
	cases := map[string][]int64{
		"cadence":    {0, 10, 20, 30, 40, 50}, // constant delta -> zero dods
		"single":     {-7},
		"extremes":   {math.MaxInt64, math.MinInt64, 0, math.MaxInt64},
		"jittery":    {100, 103, 101, 110, 90, 90},
		"descending": {50, 40, 30, 20},
	}
	for name, vals := range cases {
		tab := &Table{Cols: []Column{{Name: "x", Ints: vals}}}
		got := gorillaRoundTrip(t, tab)
		for j, want := range vals {
			if have := got.Cols[0].Ints[j]; have != want {
				t.Errorf("%s row %d: got %d want %d", name, j, have, want)
			}
		}
	}
}

func TestGorillaStringsAndMixed(t *testing.T) {
	tab := &Table{Cols: []Column{
		{Name: "timestamp", Ints: []int64{0, 10, 20}},
		{Name: "cluster", Strs: []string{"summit-0", "", "frontier-1"}},
		{Name: "power_w", Floats: []float64{1.5, 1.5, 2.25}},
	}}
	got := gorillaRoundTrip(t, tab)
	for i := range tab.Cols {
		want, have := &tab.Cols[i], got.Col(tab.Cols[i].Name)
		if have == nil {
			t.Fatalf("column %q missing", want.Name)
		}
		for j := 0; j < want.Len(); j++ {
			switch {
			case want.IsInt():
				if want.Ints[j] != have.Ints[j] {
					t.Errorf("col %q row %d int mismatch", want.Name, j)
				}
			case want.IsStr():
				if want.Strs[j] != have.Strs[j] {
					t.Errorf("col %q row %d str mismatch", want.Name, j)
				}
			default:
				if math.Float64bits(want.Floats[j]) != math.Float64bits(have.Floats[j]) {
					t.Errorf("col %q row %d float mismatch", want.Name, j)
				}
			}
		}
	}
}

func TestGorillaEmpty(t *testing.T) {
	tab := &Table{Cols: []Column{
		{Name: "i", Ints: []int64{}},
		{Name: "f", Floats: []float64{}},
		{Name: "s", Strs: []string{}},
	}}
	got := gorillaRoundTrip(t, tab)
	if got.NumRows() != 0 || len(got.Cols) != 3 {
		t.Errorf("shape = %d rows x %d cols", got.NumRows(), len(got.Cols))
	}
}

// TestGorillaColumnSelect pins the O(1) skip: a column-subset read under
// CodecGorilla must return exactly the requested columns with identical
// values, whatever mix of kinds surrounds them.
func TestGorillaColumnSelect(t *testing.T) {
	tab := sampleTable()
	var buf bytes.Buffer
	if err := WriteCodec(&buf, tab, CodecGorilla); err != nil {
		t.Fatal(err)
	}
	got, err := ReadColumns(bytes.NewReader(buf.Bytes()), []string{"timestamp", "gpu0_core_temp.mean"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cols) != 2 {
		t.Fatalf("got %d columns", len(got.Cols))
	}
	for j, want := range tab.Col("timestamp").Ints {
		if got.Col("timestamp").Ints[j] != want {
			t.Fatalf("timestamp row %d mismatch", j)
		}
	}
	for j, want := range tab.Col("gpu0_core_temp.mean").Floats {
		if math.Float64bits(got.Col("gpu0_core_temp.mean").Floats[j]) != math.Float64bits(want) {
			t.Fatalf("temp row %d mismatch", j)
		}
	}
}

// TestGorillaCompressionEffective: the bit-packed stream must compress the
// slowly-varying telemetry well below raw fixed-width size even with the
// gzip container in store mode.
func TestGorillaCompressionEffective(t *testing.T) {
	tab := sampleTable()
	raw := tab.NumRows() * (8 + 8 + 8)
	var buf bytes.Buffer
	if err := WriteCodec(&buf, tab, CodecGorilla); err != nil {
		t.Fatal(err)
	}
	if ratio := float64(buf.Len()) / float64(raw); ratio > 0.8 {
		t.Errorf("gorilla ratio = %.2f, want < 0.8 (%d of %d bytes)", ratio, buf.Len(), raw)
	}
}

// TestGorillaCorruptPayload flips and truncates the encoded stream and
// requires wrapped errors, never panics. The payload-length prefix is the
// main new attacker-controlled field.
func TestGorillaCorruptPayload(t *testing.T) {
	tab := fuzzSeedTable()
	var buf bytes.Buffer
	if err := WriteCodec(&buf, tab, CodecGorilla); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	// Truncations at every prefix length of the compressed stream.
	for n := 0; n < len(enc); n += 7 {
		_, _ = ReadColumns(bytes.NewReader(enc[:n]), nil)
		_, _ = ReadColumns(bytes.NewReader(enc[:n]), []string{"power_w"})
	}
	// Single-byte corruption across the stream: decode must either fail or
	// produce a self-consistent table (bit flips in value payloads are not
	// detectable, but must never crash or misallocate).
	for i := 0; i < len(enc); i++ {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if tbl, err := ReadColumns(bytes.NewReader(bad), nil); err == nil {
			if err := tbl.Validate(); err != nil {
				t.Fatalf("flip at %d: inconsistent table: %v", i, err)
			}
		}
	}
}

// FuzzCodecRoundTrip drives the encoder itself with arbitrary values and
// requires a lossless round trip under every codec — the complement of
// FuzzReadDayColumns, which fuzzes the decoder with arbitrary bytes.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(int64(0), int64(10), uint64(0x3ff0000000000000), uint64(0x3ff0000000000001), "a")
	f.Add(int64(math.MinInt64), int64(math.MaxInt64), uint64(0), uint64(0xffffffffffffffff), "")
	f.Add(int64(1577836800), int64(-3), math.Float64bits(math.NaN()), math.Float64bits(1e-300), "cluster-0")
	f.Fuzz(func(t *testing.T, i0, i1 int64, f0, f1 uint64, s string) {
		if len(s) > maxStrLen {
			t.Skip()
		}
		tab := &Table{Cols: []Column{
			{Name: "i", Ints: []int64{i0, i1, i0 + i1&0xffff, i0}},
			{Name: "f", Floats: []float64{math.Float64frombits(f0), math.Float64frombits(f1), math.Float64frombits(f0), math.Float64frombits(f0 ^ f1)}},
			{Name: "s", Strs: []string{s, "", s + "x", s}},
		}}
		for codec := Codec(0); codec < numCodecs; codec++ {
			var buf bytes.Buffer
			if err := WriteCodec(&buf, tab, codec); err != nil {
				t.Fatalf("codec %d write: %v", codec, err)
			}
			got, err := Read(&buf)
			if err != nil {
				t.Fatalf("codec %d read: %v", codec, err)
			}
			for c := range tab.Cols {
				want, have := &tab.Cols[c], &got.Cols[c]
				for j := 0; j < want.Len(); j++ {
					switch {
					case want.IsInt():
						if want.Ints[j] != have.Ints[j] {
							t.Fatalf("codec %d col %d row %d: %d != %d", codec, c, j, have.Ints[j], want.Ints[j])
						}
					case want.IsStr():
						if want.Strs[j] != have.Strs[j] {
							t.Fatalf("codec %d col %d row %d str mismatch", codec, c, j)
						}
					default:
						if math.Float64bits(want.Floats[j]) != math.Float64bits(have.Floats[j]) {
							t.Fatalf("codec %d col %d row %d: bits %x != %x",
								codec, c, j, math.Float64bits(have.Floats[j]), math.Float64bits(want.Floats[j]))
						}
					}
				}
			}
		}
	})
}
