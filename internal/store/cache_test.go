package store

import (
	"fmt"
	"sync"
	"testing"
)

func cacheTestTable(rows int) *Table {
	ts := make([]int64, rows)
	v := make([]float64, rows)
	for i := range ts {
		ts[i] = int64(i)
		v[i] = float64(i)
	}
	return &Table{Cols: []Column{
		{Name: "timestamp", Ints: ts},
		{Name: "v", Floats: v},
	}}
}

func TestCacheHitAndPromote(t *testing.T) {
	c := NewTableCache(1 << 20)
	tab := cacheTestTable(10)
	c.Put("a", tab)
	got, ok := c.Get("a")
	if !ok || got != tab {
		t.Fatal("cached table lost")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("phantom hit")
	}
	entries, bytes := c.Stats()
	if entries != 1 || bytes != TableBytes(tab) {
		t.Errorf("stats = %d entries, %d bytes", entries, bytes)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	// Budget of ~32 tables, 200 inserted: eviction must kick in and the
	// global byte accounting must stay under budget throughout.
	budget := int64(cacheShards) * (TableBytes(cacheTestTable(100)) * 2)
	c := NewTableCache(budget)
	evicted := 0
	for i := 0; i < 200; i++ {
		evicted += c.Put(fmt.Sprintf("k%d", i), cacheTestTable(100))
	}
	if evicted == 0 {
		t.Error("no evictions despite exceeding the budget")
	}
	_, bytes := c.Stats()
	if bytes > budget {
		t.Errorf("resident bytes %d exceed budget %d", bytes, budget)
	}
}

func TestCacheOversizedEntryNotCached(t *testing.T) {
	c := NewTableCache(1024) // smaller than any real table: nothing fits
	c.Put("big", cacheTestTable(1000))
	if _, ok := c.Get("big"); ok {
		t.Error("oversized table cached")
	}
}

func TestCacheAdmitsEntryLargerThanShardShare(t *testing.T) {
	// The budget is global: a table bigger than budget/shards (one day of
	// per-node telemetry vs the default budget) must still be cached, with
	// eviction spilling into other shards to make room.
	big := cacheTestTable(2000)
	budget := TableBytes(big) + TableBytes(big)/2
	c := NewTableCache(budget)
	for i := 0; i < 32; i++ {
		c.Put(fmt.Sprintf("small%d", i), cacheTestTable(10))
	}
	c.Put("big", big)
	if _, ok := c.Get("big"); !ok {
		t.Fatal("table over the per-shard share was not cached")
	}
	if _, bytes := c.Stats(); bytes > budget {
		t.Errorf("resident bytes %d exceed budget %d", bytes, budget)
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewTableCache(1 << 20)
	c.Put("a", cacheTestTable(5))
	c.Flush()
	if _, ok := c.Get("a"); ok {
		t.Error("Flush left entries behind")
	}
	if entries, bytes := c.Stats(); entries != 0 || bytes != 0 {
		t.Errorf("stats after flush = %d, %d", entries, bytes)
	}
}

func TestCacheUpdateSameKey(t *testing.T) {
	c := NewTableCache(1 << 20)
	c.Put("a", cacheTestTable(5))
	bigger := cacheTestTable(50)
	c.Put("a", bigger)
	got, ok := c.Get("a")
	if !ok || got != bigger {
		t.Fatal("update lost")
	}
	if entries, bytes := c.Stats(); entries != 1 || bytes != TableBytes(bigger) {
		t.Errorf("stats after update = %d entries, %d bytes", entries, bytes)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewTableCache(1 << 18)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%64)
				if _, ok := c.Get(key); !ok {
					c.Put(key, cacheTestTable(20))
				}
			}
		}(w)
	}
	wg.Wait()
}
