package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// This file is the streaming read path of the archive: a day partition is
// consumed column by column into reused scratch, with the value column
// delivered to the caller in row-order blocks *during* decode. Aggregating
// queries (rollups, downsamples, the analyses' series extraction) fold each
// block as it appears and never materialize a day table — no O(rows x cols)
// allocation, nothing retained, nothing for the cache to churn on.

// IterScratch holds the reusable buffers of streaming day reads. The zero
// value is ready to use; reuse one scratch across many IterDayColumns calls
// (it is not safe for concurrent use — give each worker its own).
type IterScratch struct {
	// Axes holds the decoded axis columns of the current call, parallel to
	// the axes argument. Valid from the first fn callback until the next
	// IterDayColumns call on this scratch.
	Axes [][]int64

	seen   []bool
	iblock []int64
	fblock []float64
	fbuf   []float64
}

// IterDayColumns streams the named numeric value column of one day
// partition in row-order blocks. The integer columns named in axes (the
// time axis, the node axis) are decoded whole into sc.Axes first; fn is
// then called with consecutive blocks of the value column, where start is
// the absolute row index of vals[0] (indexing straight into sc.Axes).
// Integer value columns are widened to float64. A non-nil error from fn
// aborts the read and is returned unwrapped.
//
// Everything handed to fn — vals and sc.Axes — is scratch, valid only for
// the current call; callers must fold, not retain.
//
// The returned count is the partition's declared row count (every axis and
// the value column decode to exactly that many rows).
func (d *Dataset) IterDayColumns(day int, axes []string, value string, sc *IterScratch, fn func(start int, vals []float64) error) (int, error) {
	f, err := os.Open(d.dayPath(day))
	if err != nil {
		return 0, fmt.Errorf("store: dataset %q day %d: %w", d.Name, day, err)
	}
	defer f.Close()
	rows, err := iterColumns(f, axes, value, sc, fn)
	if err != nil {
		return 0, d.partitionErr(day, err)
	}
	return rows, nil
}

func iterColumns(r io.Reader, axes []string, value string, sc *IterScratch, fn func(start int, vals []float64) error) (int, error) {
	sr, err := NewReader(r)
	if err != nil {
		return 0, err
	}
	defer sr.Close()
	if cap(sc.Axes) < len(axes) {
		sc.Axes = make([][]int64, len(axes))
	} else {
		sc.Axes = sc.Axes[:len(axes)]
	}
	if cap(sc.seen) < len(axes) {
		sc.seen = make([]bool, len(axes))
	} else {
		sc.seen = sc.seen[:len(axes)]
	}
	for i := range sc.seen {
		sc.seen[i] = false
	}
	if sc.iblock == nil {
		sc.iblock = make([]int64, gorillaBlockRows)
		sc.fblock = make([]float64, gorillaBlockRows)
	}

	axesDone := 0
	valueDone := false
	deferred := false   // value decoded into fbuf before all axes were ready
	valueFromAxis := -1 // value column doubles as an axis
	for axesDone < len(axes) || !valueDone {
		info, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
		ai := -1
		for k, name := range axes {
			if !sc.seen[k] && name == info.Name {
				ai = k
				break
			}
		}
		if ai >= 0 {
			if !info.Int {
				return 0, fmt.Errorf("store: axis column %q is not integer-typed", info.Name)
			}
			if sc.Axes[ai], err = sr.columnIntsInto(sc.Axes[ai]); err != nil {
				return 0, err
			}
			sc.seen[ai] = true
			axesDone++
			if info.Name == value && !valueDone {
				valueFromAxis = ai
				valueDone = true
			}
			continue
		}
		if info.Name == value && !valueDone {
			if axesDone == len(axes) {
				// All axes decoded: stream the value column straight
				// through fn, block by block during decode.
				if err := sr.columnValueBlocks(sc.iblock, sc.fblock, fn); err != nil {
					return 0, err
				}
			} else {
				// The value column precedes an axis in file order: buffer
				// it and deliver once the axes are complete.
				sc.fbuf = sc.fbuf[:0]
				buffer := func(start int, vals []float64) error {
					sc.fbuf = append(sc.fbuf, vals...)
					return nil
				}
				if err := sr.columnValueBlocks(sc.iblock, sc.fblock, buffer); err != nil {
					return 0, err
				}
				deferred = true
			}
			valueDone = true
			continue
		}
		if err := sr.Skip(); err != nil {
			return 0, err
		}
	}
	for k, name := range axes {
		if !sc.seen[k] {
			return 0, fmt.Errorf("store: missing axis column %q", name)
		}
	}
	if !valueDone {
		return 0, fmt.Errorf("store: missing value column %q", value)
	}
	switch {
	case valueFromAxis >= 0:
		src := sc.Axes[valueFromAxis]
		for start := 0; start < len(src); {
			n := len(src) - start
			if n > len(sc.fblock) {
				n = len(sc.fblock)
			}
			for j := 0; j < n; j++ {
				sc.fblock[j] = float64(src[start+j])
			}
			if err := fn(start, sc.fblock[:n]); err != nil {
				return 0, err
			}
			start += n
		}
	case deferred:
		if len(sc.fbuf) > 0 {
			if err := fn(0, sc.fbuf); err != nil {
				return 0, err
			}
		}
	}
	return sr.NumRows(), nil
}

// columnIntsInto decodes the pending integer column into dst[:0], reusing
// its capacity, and consumes it.
func (r *Reader) columnIntsInto(dst []int64) ([]int64, error) {
	if !r.pending {
		return nil, fmt.Errorf("store: column read without Next")
	}
	if !r.cur.Int {
		return nil, fmt.Errorf("store: column %q is not integer-typed", r.cur.Name)
	}
	out, err := r.decodeIntsInto(dst)
	if err != nil {
		return nil, err
	}
	r.pending = false
	r.read++
	return out, nil
}

// columnValueBlocks streams the pending numeric column through fn as
// float64 blocks in row order (integer columns are widened), reusing
// iblock/fblock (equal lengths), and consumes it.
func (r *Reader) columnValueBlocks(iblock []int64, fblock []float64, fn func(start int, vals []float64) error) error {
	if !r.pending {
		return fmt.Errorf("store: column read without Next")
	}
	if r.cur.Str {
		return fmt.Errorf("store: column %q is string-typed, not numeric", r.cur.Name)
	}
	var err error
	if r.cur.Int {
		err = r.intBlocks(iblock, func(start int, vals []int64) error {
			for j, v := range vals {
				fblock[j] = float64(v)
			}
			return fn(start, fblock[:len(vals)])
		})
	} else {
		err = r.floatBlocks(fblock, fn)
	}
	if err != nil {
		return err
	}
	r.pending = false
	r.read++
	return nil
}

// floatBlocks decodes the pending float column block by block. It does not
// consume the column; callers manage that state.
func (r *Reader) floatBlocks(block []float64, fn func(start int, vals []float64) error) error {
	if r.codec == CodecGorilla {
		n, err := r.payloadLen(gorillaPayloadBound(r.nRows))
		if err != nil {
			return err
		}
		payload, err := r.readPayload(n)
		if err != nil {
			return err
		}
		var dec gorillaFloatDecoder
		dec.Reset(payload)
		for start := 0; start < r.nRows; {
			want := r.nRows - start
			if want > len(block) {
				want = len(block)
			}
			got := dec.DecodeBlock(block[:want], r.nRows)
			if got <= 0 {
				return errTruncatedPayload(r.cur.Name, start)
			}
			if err := fn(start, block[:got]); err != nil {
				return err
			}
			start += got
		}
		if used := (dec.bit + 7) / 8; used != len(payload) {
			return fmt.Errorf("store: column %q: %d trailing payload bytes", r.cur.Name, len(payload)-used)
		}
		return nil
	}
	if r.codec.delta() {
		prev := uint64(0)
		for start := 0; start < r.nRows; {
			n := r.nRows - start
			if n > len(block) {
				n = len(block)
			}
			for j := 0; j < n; j++ {
				u, err := binary.ReadUvarint(r.br)
				if err != nil {
					return fmt.Errorf("store: column %q row %d: %w", r.cur.Name, start+j, err)
				}
				prev ^= u
				block[j] = math.Float64frombits(prev)
			}
			if err := fn(start, block[:n]); err != nil {
				return err
			}
			start += n
		}
		return nil
	}
	var raw [8]byte
	for start := 0; start < r.nRows; {
		n := r.nRows - start
		if n > len(block) {
			n = len(block)
		}
		for j := 0; j < n; j++ {
			if _, err := io.ReadFull(r.br, raw[:]); err != nil {
				return fmt.Errorf("store: column %q row %d: %w", r.cur.Name, start+j, err)
			}
			block[j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[:]))
		}
		if err := fn(start, block[:n]); err != nil {
			return err
		}
		start += n
	}
	return nil
}

// intBlocks decodes the pending integer column block by block. It does not
// consume the column; callers manage that state.
func (r *Reader) intBlocks(block []int64, fn func(start int, vals []int64) error) error {
	if r.codec == CodecGorilla {
		n, err := r.payloadLen(gorillaPayloadBound(r.nRows))
		if err != nil {
			return err
		}
		payload, err := r.readPayload(n)
		if err != nil {
			return err
		}
		var dec gorillaIntDecoder
		dec.Reset(payload)
		for start := 0; start < r.nRows; {
			want := r.nRows - start
			if want > len(block) {
				want = len(block)
			}
			got := dec.DecodeBlock(block[:want], r.nRows)
			if got <= 0 {
				return errTruncatedPayload(r.cur.Name, start)
			}
			if err := fn(start, block[:got]); err != nil {
				return err
			}
			start += got
		}
		if dec.pos != len(payload) {
			return fmt.Errorf("store: column %q: %d trailing payload bytes", r.cur.Name, len(payload)-dec.pos)
		}
		return nil
	}
	if r.codec.delta() {
		prev := int64(0)
		for start := 0; start < r.nRows; {
			n := r.nRows - start
			if n > len(block) {
				n = len(block)
			}
			for j := 0; j < n; j++ {
				u, err := binary.ReadUvarint(r.br)
				if err != nil {
					return fmt.Errorf("store: column %q row %d: %w", r.cur.Name, start+j, err)
				}
				prev += unzigzag(u)
				block[j] = prev
			}
			if err := fn(start, block[:n]); err != nil {
				return err
			}
			start += n
		}
		return nil
	}
	var raw [8]byte
	for start := 0; start < r.nRows; {
		n := r.nRows - start
		if n > len(block) {
			n = len(block)
		}
		for j := 0; j < n; j++ {
			if _, err := io.ReadFull(r.br, raw[:]); err != nil {
				return fmt.Errorf("store: column %q row %d: %w", r.cur.Name, start+j, err)
			}
			block[j] = int64(binary.LittleEndian.Uint64(raw[:]))
		}
		if err := fn(start, block[:n]); err != nil {
			return err
		}
		start += n
	}
	return nil
}
