package store

import (
	"bytes"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func metaTable() *Table {
	n := 500
	ts := make([]int64, n)
	node := make([]int64, n)
	power := make([]float64, n)
	temp := make([]float64, n)
	for i := 0; i < n; i++ {
		ts[i] = 1000 + int64(i*10)
		node[i] = int64(i % 4)
		power[i] = 1500 + 400*math.Sin(float64(i)/25)
		temp[i] = 40 + 5*math.Sin(float64(i)/40)
	}
	return &Table{Cols: []Column{
		{Name: "timestamp", Ints: ts},
		{Name: "node", Ints: node},
		{Name: "input_power.mean", Floats: power},
		{Name: "gpu0_core_temp.mean", Floats: temp},
	}}
}

func TestReaderStreamsColumns(t *testing.T) {
	tab := metaTable()
	for codec := Codec(0); codec < numCodecs; codec++ {
		var buf bytes.Buffer
		if err := WriteCodec(&buf, tab, codec); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatalf("codec %d: %v", codec, err)
		}
		if r.NumCols() != 4 || r.NumRows() != 500 || r.Codec() != codec {
			t.Fatalf("codec %d header: cols=%d rows=%d codec=%d",
				codec, r.NumCols(), r.NumRows(), r.Codec())
		}
		// Skip timestamp and node, decode power, skip temp.
		for i := 0; i < 2; i++ {
			info, err := r.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !info.Int {
				t.Fatalf("column %d should be int", i)
			}
			if err := r.Skip(); err != nil {
				t.Fatal(err)
			}
		}
		info, err := r.Next()
		if err != nil || info.Name != "input_power.mean" || info.Int {
			t.Fatalf("third column = %+v, %v", info, err)
		}
		col, err := r.Column()
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range col.Floats {
			if math.Float64bits(v) != math.Float64bits(tab.Cols[2].Floats[j]) {
				t.Fatalf("codec %d row %d mismatch after skips", codec, j)
			}
		}
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
		if err := r.Skip(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("want io.EOF after last column, got %v", err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReaderMisuse(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, metaTable()); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Column(); err == nil {
		t.Error("Column before Next accepted")
	}
	if err := r.Skip(); err == nil {
		t.Error("Skip before Next accepted")
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("Next with unconsumed column accepted")
	}
}

func TestReaderHeaderErrors(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("junk accepted")
	}
}

func TestReadColumnsSubset(t *testing.T) {
	tab := metaTable()
	var buf bytes.Buffer
	if err := Write(&buf, tab); err != nil {
		t.Fatal(err)
	}
	got, err := ReadColumns(bytes.NewReader(buf.Bytes()), []string{"timestamp", "gpu0_core_temp.mean"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cols) != 2 {
		t.Fatalf("got %d columns, want 2", len(got.Cols))
	}
	if got.Col("timestamp") == nil || got.Col("gpu0_core_temp.mean") == nil {
		t.Fatal("requested columns missing")
	}
	if got.Col("node") != nil {
		t.Fatal("unrequested column decoded")
	}
	for j, v := range got.Col("gpu0_core_temp.mean").Floats {
		if v != tab.Cols[3].Floats[j] { //lint:allow floatcompare column decode must be lossless
			t.Fatalf("row %d mismatch", j)
		}
	}
	// Unknown names are ignored, not an error.
	got, err = ReadColumns(bytes.NewReader(buf.Bytes()), []string{"nope"})
	if err != nil || len(got.Cols) != 0 {
		t.Fatalf("unknown-column select: %v cols, err %v", len(got.Cols), err)
	}
}

func TestDayMeta(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDataset(dir, "node-power")
	if err != nil {
		t.Fatal(err)
	}
	tab := metaTable()
	if err := ds.WriteDay(3, tab); err != nil {
		t.Fatal(err)
	}
	meta, err := ds.DayMeta(3)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Day != 3 || meta.Rows != 500 {
		t.Errorf("day/rows = %d/%d", meta.Day, meta.Rows)
	}
	if !meta.HasTime || meta.TimeColumn != "timestamp" {
		t.Errorf("time column = %q (has=%v)", meta.TimeColumn, meta.HasTime)
	}
	if meta.MinTime != 1000 || meta.MaxTime != 1000+499*10 {
		t.Errorf("span = [%d, %d]", meta.MinTime, meta.MaxTime)
	}
	if len(meta.Columns) != 4 || meta.Columns[2].Name != "input_power.mean" {
		t.Errorf("columns = %+v", meta.Columns)
	}
}

func TestDayMetaTimeColumnFallback(t *testing.T) {
	dir := t.TempDir()
	ds, _ := NewDataset(dir, "jobs")
	tab := &Table{Cols: []Column{
		{Name: "begin_time", Ints: []int64{50, 10, 90}},
		{Name: "energy", Floats: []float64{1, 2, 3}},
	}}
	if err := ds.WriteDay(0, tab); err != nil {
		t.Fatal(err)
	}
	meta, err := ds.DayMeta(0, "timestamp", "begin_time")
	if err != nil {
		t.Fatal(err)
	}
	if !meta.HasTime || meta.TimeColumn != "begin_time" {
		t.Fatalf("fallback time column = %q (has=%v)", meta.TimeColumn, meta.HasTime)
	}
	// Unsorted times: min/max must be a scan, not first/last.
	if meta.MinTime != 10 || meta.MaxTime != 90 {
		t.Errorf("span = [%d, %d], want [10, 90]", meta.MinTime, meta.MaxTime)
	}
	// No candidate present at all.
	meta, err = ds.DayMeta(0, "nope")
	if err != nil {
		t.Fatal(err)
	}
	if meta.HasTime || meta.TimeColumn != "" {
		t.Errorf("absent time column reported: %+v", meta)
	}
}

func TestReadDayColumns(t *testing.T) {
	dir := t.TempDir()
	ds, _ := NewDataset(dir, "x")
	if err := ds.WriteDay(0, metaTable()); err != nil {
		t.Fatal(err)
	}
	got, err := ds.ReadDayColumns(0, []string{"node"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cols) != 1 || got.Col("node") == nil {
		t.Fatalf("cols = %d", len(got.Cols))
	}
}

func TestDaysSkipsNonCanonicalNames(t *testing.T) {
	dir := t.TempDir()
	ds, _ := NewDataset(dir, "x")
	if err := ds.WriteDay(2, metaTable()); err != nil {
		t.Fatal(err)
	}
	// Stray files that match loosely but are not canonical partitions, an
	// in-flight temp file, and a directory with a partition-like name.
	for _, name := range []string{"x-day7.spwr", "x-day-0001.spwr", "x-day00003.spwr.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "x-day00009.spwr"), 0o755); err != nil {
		t.Fatal(err)
	}
	days, err := ds.Days()
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 1 || days[0] != 2 {
		t.Errorf("days = %v, want [2]", days)
	}
}

func TestReadDayErrorsNamePartition(t *testing.T) {
	dir := t.TempDir()
	ds, _ := NewDataset(dir, "cluster-power")
	// Corrupt partition: valid name, junk content.
	if err := os.WriteFile(filepath.Join(dir, "cluster-power-day00004.spwr"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ds.ReadDay(4)
	if err == nil {
		t.Fatal("corrupt partition read succeeded")
	}
	if !strings.Contains(err.Error(), "cluster-power-day00004.spwr") {
		t.Errorf("error does not name the partition: %v", err)
	}
	if _, err := ds.DayMeta(4); err == nil || !strings.Contains(err.Error(), "day00004") {
		t.Errorf("DayMeta error does not name the partition: %v", err)
	}
	// Truncated partition: valid header, cut mid-stream.
	var buf bytes.Buffer
	if err := Write(&buf, metaTable()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if err := os.WriteFile(filepath.Join(dir, "cluster-power-day00005.spwr"), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.ReadDay(5); err == nil || !strings.Contains(err.Error(), "day00005") {
		t.Errorf("truncated partition error = %v", err)
	}
	// Missing day names the dataset and day.
	if _, err := ds.ReadDay(77); err == nil || !strings.Contains(err.Error(), "day 77") {
		t.Errorf("missing day error = %v", err)
	}
}
