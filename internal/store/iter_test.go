package store

import (
	"fmt"
	"math"
	"testing"
)

// iterCollect runs IterDayColumns and gathers the streamed value column
// plus copies of the axes.
func iterCollect(t *testing.T, ds *Dataset, day int, axes []string, value string) (map[string][]int64, []float64, int) {
	t.Helper()
	var sc IterScratch
	var vals []float64
	rows, err := ds.IterDayColumns(day, axes, value, &sc, func(start int, block []float64) error {
		if start != len(vals) {
			return fmt.Errorf("block start %d, want %d", start, len(vals))
		}
		vals = append(vals, block...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ax := map[string][]int64{}
	for i, name := range axes {
		ax[name] = append([]int64(nil), sc.Axes[i]...)
	}
	return ax, vals, rows
}

// TestIterDayColumnsParity pins the streaming read against the materializing
// read, bit for bit, under every codec and for both column orders (value
// after the axes — the collector's layout — and value before an axis, which
// exercises the deferred-buffer path).
func TestIterDayColumnsParity(t *testing.T) {
	n := 500
	ts := make([]int64, n)
	node := make([]int64, n)
	power := make([]float64, n)
	for i := range ts {
		ts[i] = int64(i/5) * 10
		node[i] = int64(i % 5)
		power[i] = 9000 + 120*math.Sin(float64(i)/17) + float64(i%3)
	}
	layouts := map[string]*Table{
		"axes-first": {Cols: []Column{
			{Name: "timestamp", Ints: ts},
			{Name: "node", Ints: node},
			{Name: "other", Floats: power}, // skipped
			{Name: "power_w", Floats: power},
		}},
		"value-first": {Cols: []Column{
			{Name: "power_w", Floats: power},
			{Name: "timestamp", Ints: ts},
			{Name: "node", Ints: node},
		}},
	}
	for layoutName, tab := range layouts {
		for codec := Codec(0); codec < numCodecs; codec++ {
			name := fmt.Sprintf("%s/codec%d", layoutName, codec)
			dir := t.TempDir()
			ds, err := NewDataset(dir, "x")
			if err != nil {
				t.Fatal(err)
			}
			if err := ds.WriteDayCodec(0, tab, codec); err != nil {
				t.Fatal(err)
			}
			axes, vals, rows := iterCollect(t, ds, 0, []string{"timestamp", "node"}, "power_w")
			if rows != n || len(vals) != n {
				t.Fatalf("%s: rows=%d vals=%d want %d", name, rows, len(vals), n)
			}
			for i := range ts {
				if axes["timestamp"][i] != ts[i] || axes["node"][i] != node[i] {
					t.Fatalf("%s: axis mismatch at row %d", name, i)
				}
				if math.Float64bits(vals[i]) != math.Float64bits(power[i]) {
					t.Fatalf("%s: value mismatch at row %d", name, i)
				}
			}
		}
	}
}

// TestIterDayColumnsIntWiden: an integer value column streams widened to
// float64, matching colValue semantics of the materialized path.
func TestIterDayColumnsIntWiden(t *testing.T) {
	tab := &Table{Cols: []Column{
		{Name: "timestamp", Ints: []int64{0, 10, 20}},
		{Name: "count", Ints: []int64{7, -2, 1 << 40}},
	}}
	ds, err := NewDataset(t.TempDir(), "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteDayCodec(0, tab, CodecGorilla); err != nil {
		t.Fatal(err)
	}
	_, vals, _ := iterCollect(t, ds, 0, []string{"timestamp"}, "count")
	for i, want := range tab.Cols[1].Ints {
		if vals[i] != float64(want) { //lint:allow floatcompare exact widening
			t.Fatalf("row %d: %v != %v", i, vals[i], float64(want))
		}
	}
}

// TestIterDayColumnsValueIsAxis: requesting the time column as both axis and
// value works (a range query over the timestamp column itself).
func TestIterDayColumnsValueIsAxis(t *testing.T) {
	tab := &Table{Cols: []Column{
		{Name: "timestamp", Ints: []int64{5, 15, 25}},
		{Name: "v", Floats: []float64{1, 2, 3}},
	}}
	ds, err := NewDataset(t.TempDir(), "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteDayCodec(0, tab, CodecGorilla); err != nil {
		t.Fatal(err)
	}
	_, vals, _ := iterCollect(t, ds, 0, []string{"timestamp"}, "timestamp")
	for i, want := range tab.Cols[0].Ints {
		if vals[i] != float64(want) { //lint:allow floatcompare exact widening
			t.Fatalf("row %d: %v != %v", i, vals[i], float64(want))
		}
	}
}

func TestIterDayColumnsErrors(t *testing.T) {
	tab := &Table{Cols: []Column{
		{Name: "timestamp", Ints: []int64{0}},
		{Name: "s", Strs: []string{"a"}},
		{Name: "f", Floats: []float64{1}},
	}}
	ds, err := NewDataset(t.TempDir(), "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteDayCodec(0, tab, CodecGorilla); err != nil {
		t.Fatal(err)
	}
	var sc IterScratch
	nop := func(int, []float64) error { return nil }
	if _, err := ds.IterDayColumns(0, []string{"timestamp"}, "missing", &sc, nop); err == nil {
		t.Error("missing value column accepted")
	}
	if _, err := ds.IterDayColumns(0, []string{"nope"}, "f", &sc, nop); err == nil {
		t.Error("missing axis column accepted")
	}
	if _, err := ds.IterDayColumns(0, []string{"timestamp"}, "s", &sc, nop); err == nil {
		t.Error("string value column accepted")
	}
	if _, err := ds.IterDayColumns(0, []string{"s"}, "f", &sc, nop); err == nil {
		t.Error("string axis column accepted")
	}
	if _, err := ds.IterDayColumns(3, []string{"timestamp"}, "f", &sc, nop); err == nil {
		t.Error("missing day accepted")
	}
	wantErr := fmt.Errorf("stop here")
	if _, err := ds.IterDayColumns(0, []string{"timestamp"}, "f", &sc, func(int, []float64) error {
		return wantErr
	}); err == nil {
		t.Error("fn error not propagated")
	}
}
