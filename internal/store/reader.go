package store

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// ColumnInfo describes one column of a table without its data.
type ColumnInfo struct {
	Name string
	Int  bool // integer-typed
	Str  bool // string-typed (neither set = float)
}

// Reader streams a table written by Write one column at a time, letting the
// caller decode or skip each column. This is the serving-path primitive: a
// query that touches two of fourteen columns pays the varint walk for all of
// them (the format is variable-width) but allocates and retains only the two
// it asked for.
//
// Usage: NewReader, then repeat Next -> (Column | Skip) until Next returns
// io.EOF, then Close.
type Reader struct {
	zr    *gzip.Reader
	br    *bufio.Reader
	codec Codec
	nCols int
	nRows int

	read    int  // columns fully consumed
	pending bool // Next announced a column not yet consumed
	cur     ColumnInfo

	payload []byte // reused scratch for length-prefixed CodecGorilla payloads
}

// NewReader parses the header and positions the reader at the first column.
func NewReader(r io.Reader) (*Reader, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("store: gzip: %w", err)
	}
	br := bufio.NewReader(zr)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		_ = zr.Close()
		return nil, fmt.Errorf("store: header: %w", err)
	}
	if string(head) != magic {
		_ = zr.Close()
		return nil, fmt.Errorf("store: bad magic %q", head)
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		_ = zr.Close()
		return nil, err
	}
	if ver != version && ver != versionStrings {
		_ = zr.Close()
		return nil, fmt.Errorf("store: unsupported version %d", ver)
	}
	codecByte, err := br.ReadByte()
	if err != nil {
		_ = zr.Close()
		return nil, err
	}
	codec := Codec(codecByte)
	if codec >= numCodecs {
		_ = zr.Close()
		return nil, fmt.Errorf("store: unknown codec %d", codec)
	}
	nCols, err := binary.ReadUvarint(br)
	if err != nil {
		_ = zr.Close()
		return nil, err
	}
	nRows, err := binary.ReadUvarint(br)
	if err != nil {
		_ = zr.Close()
		return nil, err
	}
	const maxCols, maxRows = 1 << 16, 1 << 32
	if nCols > maxCols || nRows > maxRows {
		_ = zr.Close()
		return nil, fmt.Errorf("store: implausible dimensions %d x %d", nCols, nRows)
	}
	return &Reader{zr: zr, br: br, codec: codec, nCols: int(nCols), nRows: int(nRows)}, nil
}

// NumCols returns the column count declared in the header.
func (r *Reader) NumCols() int { return r.nCols }

// NumRows returns the row count declared in the header.
func (r *Reader) NumRows() int { return r.nRows }

// Codec returns the codec the table was written with.
func (r *Reader) Codec() Codec { return r.codec }

// Next announces the next column's name and type. It returns io.EOF after
// the last column. The caller must consume the column with Column or Skip
// before calling Next again.
func (r *Reader) Next() (ColumnInfo, error) {
	if r.pending {
		return ColumnInfo{}, fmt.Errorf("store: column %q not consumed", r.cur.Name)
	}
	if r.read >= r.nCols {
		return ColumnInfo{}, io.EOF
	}
	nameLen, err := binary.ReadUvarint(r.br)
	if err != nil {
		return ColumnInfo{}, fmt.Errorf("store: column %d header: %w", r.read, err)
	}
	if nameLen > 4096 {
		return ColumnInfo{}, fmt.Errorf("store: column name too long")
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r.br, name); err != nil {
		return ColumnInfo{}, fmt.Errorf("store: column %d name: %w", r.read, err)
	}
	kind, err := r.br.ReadByte()
	if err != nil {
		return ColumnInfo{}, fmt.Errorf("store: column %q kind: %w", name, err)
	}
	switch kind {
	case colInt, colFlt, colStr:
	default:
		return ColumnInfo{}, fmt.Errorf("store: unknown column kind %d", kind)
	}
	r.cur = ColumnInfo{Name: string(name), Int: kind == colInt, Str: kind == colStr}
	r.pending = true
	return r.cur, nil
}

// Column decodes the values of the column last announced by Next.
func (r *Reader) Column() (*Column, error) {
	if !r.pending {
		return nil, fmt.Errorf("store: Column without Next")
	}
	col := Column{Name: r.cur.Name}
	var err error
	switch {
	case r.cur.Int:
		col.Ints, err = r.decodeInts()
	case r.cur.Str:
		col.Strs, err = r.decodeStrs()
	default:
		col.Floats, err = r.decodeFloats()
	}
	if err != nil {
		return nil, err
	}
	r.pending = false
	r.read++
	return &col, nil
}

// Skip discards the values of the column last announced by Next without
// retaining them.
func (r *Reader) Skip() error {
	if !r.pending {
		return fmt.Errorf("store: Skip without Next")
	}
	var err error
	switch {
	case r.codec == CodecGorilla:
		// Every gorilla column payload is length-prefixed: one uvarint and
		// one Discard, no varint walk. This is what makes column-selective
		// reads cheap under the new codec.
		bound := gorillaPayloadBound(r.nRows)
		if r.cur.Str {
			bound = uint64(r.nRows)*(maxStrLen+binary.MaxVarintLen64) + 16
		}
		n, err := r.payloadLen(bound)
		if err != nil {
			return err
		}
		if _, err := r.br.Discard(n); err != nil {
			return fmt.Errorf("store: column %q: %w", r.cur.Name, err)
		}
	case r.cur.Str:
		// Strings are length-prefixed under every codec; walk and
		// discard value by value.
		for j := 0; j < r.nRows; j++ {
			n, err := binary.ReadUvarint(r.br)
			if err != nil {
				return fmt.Errorf("store: column %q row %d: %w", r.cur.Name, j, err)
			}
			if n > maxStrLen {
				return fmt.Errorf("store: column %q row %d: string too long (%d bytes)", r.cur.Name, j, n)
			}
			if _, err := r.br.Discard(int(n)); err != nil {
				return fmt.Errorf("store: column %q row %d: %w", r.cur.Name, j, err)
			}
		}
	case r.codec.delta():
		// Variable-width: the varints must still be walked.
		for j := 0; j < r.nRows; j++ {
			if _, err = binary.ReadUvarint(r.br); err != nil {
				return fmt.Errorf("store: column %q row %d: %w", r.cur.Name, j, err)
			}
		}
	default:
		if _, err = r.br.Discard(8 * r.nRows); err != nil {
			return fmt.Errorf("store: column %q: %w", r.cur.Name, err)
		}
	}
	r.pending = false
	r.read++
	return nil
}

// maxPreallocRows bounds the rows allocated up front when decoding a
// column. The header's row count is attacker-controlled up to 2^32; a claim
// beyond this cap must surface as a decode error when the stream runs dry,
// not as a multi-gigabyte allocation.
const maxPreallocRows = 1 << 20

// gorillaBlockRows is the block size the gorilla decoders produce values in;
// small enough to live in cache, large enough to amortize the loop.
const gorillaBlockRows = 4096

// payloadLen reads and validates the byte-length prefix of the pending
// CodecGorilla column against bound (the largest plausible payload for the
// declared row count — corrupt length claims must fail here, not allocate).
func (r *Reader) payloadLen(bound uint64) (int, error) {
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		return 0, fmt.Errorf("store: column %q payload length: %w", r.cur.Name, err)
	}
	if n > bound {
		return 0, fmt.Errorf("store: column %q payload length %d exceeds bound %d", r.cur.Name, n, bound)
	}
	return int(n), nil
}

// readPayload reads n bytes into the reader's reused scratch. Growth is
// chunked so a corrupt length claim on a truncated stream fails after at
// most one extra chunk instead of allocating the full claim up front.
func (r *Reader) readPayload(n int) ([]byte, error) {
	if cap(r.payload) >= n {
		buf := r.payload[:n]
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return nil, fmt.Errorf("store: column %q payload: %w", r.cur.Name, err)
		}
		return buf, nil
	}
	const chunk = 1 << 20
	buf := r.payload[:0]
	for len(buf) < n {
		c := n - len(buf)
		if c > chunk {
			c = chunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, c)...)
		if _, err := io.ReadFull(r.br, buf[start:]); err != nil {
			r.payload = buf[:0]
			return nil, fmt.Errorf("store: column %q payload: %w", r.cur.Name, err)
		}
	}
	r.payload = buf
	return buf, nil
}

func (r *Reader) decodeGorillaInts(out []int64) ([]int64, error) {
	n, err := r.payloadLen(gorillaPayloadBound(r.nRows))
	if err != nil {
		return nil, err
	}
	payload, err := r.readPayload(n)
	if err != nil {
		return nil, err
	}
	var dec gorillaIntDecoder
	dec.Reset(payload)
	var block [gorillaBlockRows]int64
	for len(out) < r.nRows {
		want := r.nRows - len(out)
		if want > len(block) {
			want = len(block)
		}
		got := dec.DecodeBlock(block[:want], r.nRows)
		if got <= 0 {
			return nil, errTruncatedPayload(r.cur.Name, len(out))
		}
		out = append(out, block[:got]...)
	}
	if dec.pos != len(payload) {
		return nil, fmt.Errorf("store: column %q: %d trailing payload bytes", r.cur.Name, len(payload)-dec.pos)
	}
	return out, nil
}

func (r *Reader) decodeGorillaFloats(out []float64) ([]float64, error) {
	n, err := r.payloadLen(gorillaPayloadBound(r.nRows))
	if err != nil {
		return nil, err
	}
	payload, err := r.readPayload(n)
	if err != nil {
		return nil, err
	}
	var dec gorillaFloatDecoder
	dec.Reset(payload)
	var block [gorillaBlockRows]float64
	for len(out) < r.nRows {
		want := r.nRows - len(out)
		if want > len(block) {
			want = len(block)
		}
		got := dec.DecodeBlock(block[:want], r.nRows)
		if got <= 0 {
			return nil, errTruncatedPayload(r.cur.Name, len(out))
		}
		out = append(out, block[:got]...)
	}
	if used := (dec.bit + 7) / 8; used != len(payload) {
		return nil, fmt.Errorf("store: column %q: %d trailing payload bytes", r.cur.Name, len(payload)-used)
	}
	return out, nil
}

func (r *Reader) decodeGorillaStrs() ([]string, error) {
	bound := uint64(r.nRows)*(maxStrLen+binary.MaxVarintLen64) + 16
	n, err := r.payloadLen(bound)
	if err != nil {
		return nil, err
	}
	payload, err := r.readPayload(n)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, min(r.nRows, maxPreallocRows))
	pos := 0
	for j := 0; j < r.nRows; j++ {
		l, sz := binary.Uvarint(payload[pos:])
		if sz <= 0 {
			return nil, fmt.Errorf("store: column %q row %d: bad string length", r.cur.Name, j)
		}
		pos += sz
		if l > maxStrLen {
			return nil, fmt.Errorf("store: column %q row %d: string too long (%d bytes)", r.cur.Name, j, l)
		}
		if uint64(len(payload)-pos) < l {
			return nil, fmt.Errorf("store: column %q row %d: string truncated", r.cur.Name, j)
		}
		out = append(out, string(payload[pos:pos+int(l)]))
		pos += int(l)
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("store: column %q: %d trailing payload bytes", r.cur.Name, len(payload)-pos)
	}
	return out, nil
}

func (r *Reader) decodeInts() ([]int64, error) { return r.decodeIntsInto(nil) }

// decodeIntsInto appends the pending integer column's values into dst[:0],
// reusing its capacity when large enough (the iterator path's axis scratch).
func (r *Reader) decodeIntsInto(dst []int64) ([]int64, error) {
	out := dst[:0]
	if need := min(r.nRows, maxPreallocRows); cap(out) < need {
		out = make([]int64, 0, need)
	}
	if r.codec == CodecGorilla {
		return r.decodeGorillaInts(out)
	}
	if r.codec.delta() {
		prev := int64(0)
		for j := 0; j < r.nRows; j++ {
			u, err := binary.ReadUvarint(r.br)
			if err != nil {
				return nil, fmt.Errorf("store: column %q row %d: %w", r.cur.Name, j, err)
			}
			prev += unzigzag(u)
			out = append(out, prev)
		}
		return out, nil
	}
	var raw [8]byte
	for j := 0; j < r.nRows; j++ {
		if _, err := io.ReadFull(r.br, raw[:]); err != nil {
			return nil, fmt.Errorf("store: column %q row %d: %w", r.cur.Name, j, err)
		}
		out = append(out, int64(binary.LittleEndian.Uint64(raw[:])))
	}
	return out, nil
}

func (r *Reader) decodeFloats() ([]float64, error) {
	out := make([]float64, 0, min(r.nRows, maxPreallocRows))
	if r.codec == CodecGorilla {
		return r.decodeGorillaFloats(out)
	}
	if r.codec.delta() {
		prev := uint64(0)
		for j := 0; j < r.nRows; j++ {
			u, err := binary.ReadUvarint(r.br)
			if err != nil {
				return nil, fmt.Errorf("store: column %q row %d: %w", r.cur.Name, j, err)
			}
			prev ^= u
			out = append(out, math.Float64frombits(prev))
		}
		return out, nil
	}
	var raw [8]byte
	for j := 0; j < r.nRows; j++ {
		if _, err := io.ReadFull(r.br, raw[:]); err != nil {
			return nil, fmt.Errorf("store: column %q row %d: %w", r.cur.Name, j, err)
		}
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(raw[:])))
	}
	return out, nil
}

func (r *Reader) decodeStrs() ([]string, error) {
	if r.codec == CodecGorilla {
		return r.decodeGorillaStrs()
	}
	out := make([]string, 0, min(r.nRows, maxPreallocRows))
	var buf []byte
	for j := 0; j < r.nRows; j++ {
		n, err := binary.ReadUvarint(r.br)
		if err != nil {
			return nil, fmt.Errorf("store: column %q row %d: %w", r.cur.Name, j, err)
		}
		if n > maxStrLen {
			return nil, fmt.Errorf("store: column %q row %d: string too long (%d bytes)", r.cur.Name, j, n)
		}
		if uint64(cap(buf)) < n {
			buf = make([]byte, n)
		}
		b := buf[:n]
		if _, err := io.ReadFull(r.br, b); err != nil {
			return nil, fmt.Errorf("store: column %q row %d: %w", r.cur.Name, j, err)
		}
		out = append(out, string(b))
	}
	return out, nil
}

// Close releases the underlying gzip reader. It does not close the wrapped
// io.Reader.
func (r *Reader) Close() error { return r.zr.Close() }

// ReadColumns deserializes only the named columns of a table written by
// Write (nil selects every column, making it equivalent to Read). Requested
// names absent from the table are ignored; check the result with Col.
func ReadColumns(r io.Reader, names []string) (*Table, error) {
	sr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	defer sr.Close()
	var want map[string]bool
	if names != nil {
		want = make(map[string]bool, len(names))
		for _, n := range names {
			want[n] = true
		}
	}
	t := &Table{}
	for {
		info, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if want != nil && !want[info.Name] {
			if err := sr.Skip(); err != nil {
				return nil, err
			}
			continue
		}
		col, err := sr.Column()
		if err != nil {
			return nil, err
		}
		t.Cols = append(t.Cols, *col)
	}
	return t, t.Validate()
}

// DayMeta is the row-range metadata of one day partition: its shape, column
// inventory, and the time span covered by its time column. The query tier
// uses it to prune partitions without decoding them fully.
type DayMeta struct {
	Day     int
	Rows    int
	Columns []ColumnInfo
	// TimeColumn is the integer column the span was taken from ("" when
	// none of the candidates is present; then HasTime is false and the
	// partition cannot be pruned by time).
	TimeColumn       string
	HasTime          bool
	MinTime, MaxTime int64
}

// DayMeta scans the partition for the given day and returns its metadata.
// timeCols lists candidate time-column names in priority order; empty
// defaults to "timestamp". Only the matched time column is decoded — every
// other column is skipped, so the scan allocates O(rows) once instead of
// O(rows x cols).
func (d *Dataset) DayMeta(day int, timeCols ...string) (DayMeta, error) {
	if len(timeCols) == 0 {
		timeCols = []string{"timestamp"}
	}
	f, err := os.Open(d.dayPath(day))
	if err != nil {
		return DayMeta{}, fmt.Errorf("store: dataset %q day %d: %w", d.Name, day, err)
	}
	defer f.Close()
	meta, err := readDayMeta(f, day, timeCols)
	if err != nil {
		return DayMeta{}, d.partitionErr(day, err)
	}
	return meta, nil
}

func readDayMeta(r io.Reader, day int, timeCols []string) (DayMeta, error) {
	sr, err := NewReader(r)
	if err != nil {
		return DayMeta{}, err
	}
	defer sr.Close()
	isTime := make(map[string]bool, len(timeCols))
	for _, n := range timeCols {
		isTime[n] = true
	}
	meta := DayMeta{Day: day, Rows: sr.NumRows()}
	for {
		info, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return DayMeta{}, err
		}
		meta.Columns = append(meta.Columns, info)
		if !meta.HasTime && info.Int && isTime[info.Name] {
			col, err := sr.Column()
			if err != nil {
				return DayMeta{}, err
			}
			meta.TimeColumn = info.Name
			if len(col.Ints) > 0 {
				meta.HasTime = true
				meta.MinTime, meta.MaxTime = col.Ints[0], col.Ints[0]
				for _, t := range col.Ints[1:] {
					if t < meta.MinTime {
						meta.MinTime = t
					}
					if t > meta.MaxTime {
						meta.MaxTime = t
					}
				}
			}
			continue
		}
		if err := sr.Skip(); err != nil {
			return DayMeta{}, err
		}
	}
	return meta, nil
}

// ReadDayColumns loads only the named columns of a day partition (nil loads
// all, like ReadDay).
func (d *Dataset) ReadDayColumns(day int, names []string) (*Table, error) {
	f, err := os.Open(d.dayPath(day))
	if err != nil {
		return nil, fmt.Errorf("store: dataset %q day %d: %w", d.Name, day, err)
	}
	defer f.Close()
	t, err := ReadColumns(f, names)
	if err != nil {
		return nil, d.partitionErr(day, err)
	}
	return t, nil
}
