package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Dataset is a named, daily-partitioned collection of tables in a
// directory — the on-disk layout of the paper's archive (one file per day
// per dataset).
type Dataset struct {
	Dir  string
	Name string
}

// NewDataset ensures the directory exists and returns the handle.
func NewDataset(dir, name string) (*Dataset, error) {
	if name == "" || strings.ContainsAny(name, "/\\") {
		return nil, fmt.Errorf("store: invalid dataset name %q", name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dataset dir: %w", err)
	}
	return &Dataset{Dir: dir, Name: name}, nil
}

func (d *Dataset) dayPath(day int) string {
	return filepath.Join(d.Dir, fmt.Sprintf("%s-day%05d.spwr", d.Name, day))
}

// WriteDay stores the table as the partition for the given day index.
func (d *Dataset) WriteDay(day int, t *Table) error {
	return d.WriteDayCodec(day, t, CodecDelta)
}

// WriteDayCodec stores the table as the partition for the given day index
// with an explicit codec.
func (d *Dataset) WriteDayCodec(day int, t *Table, codec Codec) error {
	if day < 0 {
		return fmt.Errorf("store: negative day %d", day)
	}
	tmp := d.dayPath(day) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteCodec(f, t, codec); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, d.dayPath(day))
}

// partitionErr wraps a decode failure with the partition it came from, so a
// truncated or corrupt day file is reported by name instead of failing
// opaquely mid-scan.
func (d *Dataset) partitionErr(day int, err error) error {
	return fmt.Errorf("store: dataset %q partition %s: %w",
		d.Name, filepath.Base(d.dayPath(day)), err)
}

// ReadDay loads the partition for the given day index.
func (d *Dataset) ReadDay(day int) (*Table, error) {
	f, err := os.Open(d.dayPath(day))
	if err != nil {
		return nil, fmt.Errorf("store: dataset %q day %d: %w", d.Name, day, err)
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, d.partitionErr(day, err)
	}
	return t, nil
}

// Days lists the day indices present, sorted ascending. Stray files — other
// datasets, in-flight .tmp files, directories, or names that do not
// round-trip through the canonical partition format — are skipped.
func (d *Dataset) Days() ([]int, error) {
	entries, err := os.ReadDir(d.Dir)
	if err != nil {
		return nil, err
	}
	prefix := d.Name + "-day"
	var days []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".spwr") {
			continue
		}
		numPart := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".spwr")
		day, err := strconv.Atoi(numPart)
		if err != nil || day < 0 {
			continue
		}
		// Require the canonical zero-padded form so ReadDay(day) opens
		// exactly this file (e.g. "x-day7.spwr" is stray, not day 7).
		if fmt.Sprintf("%05d", day) != numPart {
			continue
		}
		days = append(days, day)
	}
	sort.Ints(days)
	return days, nil
}

// SizeOnDisk returns the dataset's total bytes across partitions.
func (d *Dataset) SizeOnDisk() (int64, error) {
	days, err := d.Days()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, day := range days {
		fi, err := os.Stat(d.dayPath(day))
		if err != nil {
			return 0, err
		}
		total += fi.Size()
	}
	return total, nil
}
