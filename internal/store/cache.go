package store

import (
	"container/list"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// TableCache is a sharded, size-bounded LRU over decoded day tables. The
// gzip+delta decode of a partition is the measured hot path of both the
// query tier and the archive-backed analyses; keeping decoded tables
// resident lets repeated reads of the same days skip it entirely. Sharding
// keeps lock contention off the serving path when many readers hit the
// cache concurrently.
//
// The cache lives in store — not in any one consumer — so the query engine
// and the analysis source layer can share a single byte budget: one cache,
// one eviction policy, however many data planes read through it.
//
// The byte budget is global, not per shard: one day of per-node telemetry
// decodes to tens of megabytes, so a per-shard budget would refuse exactly
// the tables most worth caching. Eviction starts in the inserting shard
// (locks are only ever held one at a time, so spilling into neighbor shards
// cannot deadlock).
const cacheShards = 16

// TableCache is safe for concurrent use. The zero value is not usable;
// construct with NewTableCache.
type TableCache struct {
	max    int64
	bytes  atomic.Int64 // resident decoded bytes across all shards
	shards [cacheShards]cacheShard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	// Admission doorkeeper: first-touch keys are served by the streaming
	// iterator without entering the cache; only keys touched again get
	// decoded tables admitted. A single full-archive sweep therefore cannot
	// evict the working set. The map is bounded and reset when full —
	// forgetting old touch counts only delays admission by one access.
	touchMu sync.Mutex
	touched map[string]int
}

// touchLimit bounds the doorkeeper map. 8192 keys is ~years of day
// partitions across several datasets; resetting beyond that is harmless.
const touchLimit = 8192

// Touch records an access intent for key and returns how many times the key
// has been touched (including this one) since the doorkeeper last reset.
// The read path calls it on every cache miss: a result of 1 means
// "first sight, serve via the iterator, do not admit"; >= 2 means the key
// is hot and worth materializing into the cache.
func (c *TableCache) Touch(key string) int {
	c.touchMu.Lock()
	defer c.touchMu.Unlock()
	if c.touched == nil || len(c.touched) >= touchLimit {
		c.touched = make(map[string]int, 64)
	}
	c.touched[key]++
	return c.touched[key]
}

// CacheCounters is a snapshot of the cache's access statistics.
type CacheCounters struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// Counters returns the cumulative hit/miss/eviction counts.
func (c *TableCache) Counters() CacheCounters {
	return CacheCounters{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}

type cacheShard struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	tab  *Table
	size int64
}

// NewTableCache bounds total decoded bytes across all shards. maxBytes <= 0
// disables caching (every Get misses, Put is a no-op).
func NewTableCache(maxBytes int64) *TableCache {
	c := &TableCache{max: maxBytes}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[string]*list.Element)
	}
	return c
}

// Max returns the configured byte budget.
func (c *TableCache) Max() int64 { return c.max }

func (c *TableCache) shardIndex(key string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key)) // fnv.Write cannot fail
	return int(h.Sum32() % cacheShards)
}

// Get returns the cached table for key, promoting it to most recently used.
func (c *TableCache) Get(key string) (*Table, bool) {
	s := &c.shards[c.shardIndex(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	s.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).tab, true
}

// Put inserts (or refreshes) the table under key and returns how many
// entries were evicted to stay under the byte budget. A table larger than
// the entire budget is not cached at all.
func (c *TableCache) Put(key string, tab *Table) (evicted int) {
	size := TableBytes(tab)
	if size > c.max {
		return 0
	}
	idx := c.shardIndex(key)
	s := &c.shards[idx]
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.bytes.Add(size - e.size)
		e.tab, e.size = tab, size
	} else {
		s.items[key] = s.ll.PushFront(&cacheEntry{key: key, tab: tab, size: size})
		c.bytes.Add(size)
	}
	// Evict within the inserting shard first, sparing the entry itself.
	for c.bytes.Load() > c.max && s.ll.Len() > 1 {
		evicted += c.evictOldest(s)
	}
	s.mu.Unlock()
	// Still over budget (the new entry dominates its shard): spill eviction
	// into the other shards, oldest-first per shard.
	for i := 1; i < cacheShards && c.bytes.Load() > c.max; i++ {
		o := &c.shards[(idx+i)%cacheShards]
		o.mu.Lock()
		for c.bytes.Load() > c.max && o.ll.Len() > 0 {
			evicted += c.evictOldest(o)
		}
		o.mu.Unlock()
	}
	return evicted
}

// evictOldest removes the LRU entry of s. Caller holds s.mu.
func (c *TableCache) evictOldest(s *cacheShard) int {
	oldest := s.ll.Back()
	if oldest == nil {
		return 0
	}
	e := oldest.Value.(*cacheEntry)
	s.ll.Remove(oldest)
	delete(s.items, e.key)
	c.bytes.Add(-e.size)
	c.evictions.Add(1)
	return 1
}

// Flush empties the cache, including the admission doorkeeper's touch
// counts: a flushed cache is fully cold, so the next read of any key
// streams again instead of inheriting pre-flush admission decisions.
func (c *TableCache) Flush() {
	c.touchMu.Lock()
	c.touched = nil
	c.touchMu.Unlock()
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; el = el.Next() {
			c.bytes.Add(-el.Value.(*cacheEntry).size)
		}
		s.ll.Init()
		s.items = make(map[string]*list.Element)
		s.mu.Unlock()
	}
}

// Stats returns the resident entry count and decoded byte total.
func (c *TableCache) Stats() (entries int, bytes int64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		entries += s.ll.Len()
		s.mu.Unlock()
	}
	return entries, c.bytes.Load()
}

// CacheKey builds the canonical cache key of one decoded partition read:
// dataset, day, and the column selection (nil = every column). Consumers
// sharing one TableCache must key reads this way so a full-table load and a
// column-selective load never alias.
func CacheKey(dataset string, day int, cols []string) string {
	key := dataset + "|" + strconv.Itoa(day) + "|"
	if cols == nil {
		return key + "*"
	}
	return key + strings.Join(cols, ",")
}

// ReadDayColumnsCached is the shared hot-path read: load the named columns
// of one day partition (nil = all) through the cache. The boolean reports a
// cache hit. A nil cache degrades to an uncached read.
func (d *Dataset) ReadDayColumnsCached(c *TableCache, day int, names []string) (*Table, bool, error) {
	if c == nil {
		t, err := d.ReadDayColumns(day, names)
		return t, false, err
	}
	key := CacheKey(d.Name, day, names)
	if tab, ok := c.Get(key); ok {
		return tab, true, nil
	}
	tab, err := d.ReadDayColumns(day, names)
	if err != nil {
		return nil, false, err
	}
	c.Put(key, tab)
	return tab, false, nil
}

// TableBytes approximates the resident size of a decoded table: 8 bytes per
// numeric value (string values count their bytes plus header) plus
// per-column slice overhead. Cache accounting and decode metrics share this
// estimate.
func TableBytes(t *Table) int64 {
	var b int64
	for i := range t.Cols {
		c := &t.Cols[i]
		if c.IsStr() {
			for _, s := range c.Strs {
				b += int64(len(s)) + 16
			}
			b += 64
			continue
		}
		b += int64(c.Len())*8 + 64
	}
	return b
}
