package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/whatif"
)

// TestGoldenCatalogReports pins every catalog scenario by its full
// objective report at tolerance zero: any change to the engine, the
// workload model, the trace converter or the spec compiler that moves a
// single bit of any catalog run fails here. Regenerate intentionally with
//
//	UPDATE_GOLDEN=1 go test ./internal/scenario -run TestGolden
//
// and review the diff like any other contract change.
func TestGoldenCatalogReports(t *testing.T) {
	update := os.Getenv("UPDATE_GOLDEN") != ""
	for _, spec := range Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			r, err := Compile(spec, "")
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			d, _, err := Run(r, 2)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			rep, err := r.Assess(d.Source(), whatif.Weights{})
			if err != nil {
				t.Fatalf("assess: %v", err)
			}
			got, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			path := filepath.Join("testdata", "golden", spec.Name+".json")
			if update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with UPDATE_GOLDEN=1 to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("report drifted from %s at tolerance 0:\n got: %s\nwant: %s",
					path, got, want)
			}
		})
	}
}
