package scenario

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/whatif"
)

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) < 6 {
		t.Fatalf("catalog holds %d scenarios, want >= 6", len(cat))
	}
	if !sort.SliceIsSorted(cat, func(i, j int) bool { return cat[i].Name < cat[j].Name }) {
		t.Error("catalog is not sorted by name")
	}
	seen := map[string]bool{}
	for _, s := range cat {
		if seen[s.Name] {
			t.Errorf("duplicate catalog name %q", s.Name)
		}
		seen[s.Name] = true
		if err := s.Validate(); err != nil {
			t.Errorf("catalog scenario %q invalid: %v", s.Name, err)
		}
		if s.Description == "" {
			t.Errorf("catalog scenario %q has no description", s.Name)
		}
	}
}

func TestCatalogCompiles(t *testing.T) {
	for _, s := range Catalog() {
		r, err := Compile(s, "")
		if err != nil {
			t.Errorf("compile %q: %v", s.Name, err)
			continue
		}
		if err := r.Config.Validate(); err != nil {
			t.Errorf("%q compiled config invalid: %v", s.Name, err)
		}
		if r.Hash == 0 || r.Seed == 0 {
			t.Errorf("%q identity not derived: hash %#x seed %#x", s.Name, r.Hash, r.Seed)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("heatwave-summer")
	if err != nil || s.Name != "heatwave-summer" {
		t.Fatalf("ByName: %v, %+v", err, s)
	}
	if _, err := ByName("no-such-scenario"); !errors.Is(err, ErrScenario) {
		t.Errorf("unknown name err = %v, want ErrScenario", err)
	} else if !strings.Contains(err.Error(), "heatwave-summer") {
		t.Errorf("unknown-name error should list catalog names, got %v", err)
	}
}

// TestWhatifStudiesResolve pins the cross-package contract: every what-if
// study's base scenario must exist in this catalog (whatif cannot import
// scenario, so the check lives here).
func TestWhatifStudiesResolve(t *testing.T) {
	for _, st := range whatif.Catalog() {
		if _, err := ByName(st.Scenario); err != nil {
			t.Errorf("study %q references missing scenario %q: %v", st.Name, st.Scenario, err)
		}
	}
}

// TestStudyBasesMatchHistorical pins the refactor: the three scenarios the
// what-if studies reference must compile to exactly the sim configs the
// studies embedded before the scenario layer existed, so every sweep seed
// and sweep artifact is unchanged.
func TestStudyBasesMatchHistorical(t *testing.T) {
	mk := func(hours int64, offset int64) sim.Config {
		cfg := sim.Scaled(64, hours*units.SecondsPerHour)
		cfg.StartTime += offset
		// Compile returns the validated (normalized) form; the engine
		// applies the same normalization to the raw study bases at run
		// time, so the runtime configs are identical.
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		return cfg
	}
	cases := []struct {
		name string
		want sim.Config
	}{
		{"heatwave-summer", mk(12, whatif.MidJulyOffsetSec)},
		{"winter-economizer", mk(12, 0)},
		{"summer-capday", mk(24, whatif.MidJulyOffsetSec)},
	}
	for _, c := range cases {
		r, err := Resolve(c.name)
		if err != nil {
			t.Fatalf("resolve %q: %v", c.name, err)
		}
		got, err := json.Marshal(r.Config)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(c.want)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("%q config drifted from the historical study base:\n got %s\nwant %s",
				c.name, got, want)
		}
	}
}

func TestHashSemantics(t *testing.T) {
	base := Spec{Version: Version, Name: "a", Nodes: 32, DurationSec: 3600}
	h := func(s Spec) uint64 {
		r, err := Compile(s, "")
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		return r.Hash
	}
	h0 := h(base)

	// Cosmetic fields are excluded.
	cosmetic := base
	cosmetic.Name = "b"
	cosmetic.Description = "different words"
	if h(cosmetic) != h0 {
		t.Error("name/description changed the hash")
	}

	// Every semantic knob participates.
	for name, mut := range map[string]func(*Spec){
		"nodes":    func(s *Spec) { s.Nodes = 64 },
		"duration": func(s *Spec) { s.DurationSec = 7200 },
		"seed":     func(s *Spec) { s.Seed = 7 },
		"weather":  func(s *Spec) { s.Weather = WeatherSummer },
		"failures": func(s *Spec) { s.Failures.Regime = FailureOff },
		"tuning":   func(s *Spec) { s.Tuning.SupplySetpointC = 24 },
		"cap":      func(s *Spec) { s.PowerCapMW = 0.1 },
		"capsched": func(s *Spec) { s.CapSchedule = []CapStep{{AfterSec: 60, CapMW: 0.1}} },
		"workload": func(s *Spec) { s.Workload.Jobs = 33 },
	} {
		m := base
		mut(&m)
		if h(m) == h0 {
			t.Errorf("%s change did not move the hash", name)
		}
	}

	// Trace content is hashed, not just the path: same path, different
	// bytes must change the identity.
	dir := t.TempDir()
	p := filepath.Join(dir, "t.csv")
	tr := base
	tr.Workload = WorkloadSpec{Source: SourceTrace, TracePath: "t.csv"}
	write := func(body string) {
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("job_id,nodes,submit,duration\n1,2,100,600\n")
	h1 := h2(t, tr, dir)
	write("job_id,nodes,submit,duration\n1,2,100,900\n")
	if h2(t, tr, dir) == h1 {
		t.Error("trace content change did not move the hash")
	}
}

func h2(t *testing.T, s Spec, dir string) uint64 {
	t.Helper()
	r, err := Compile(s, dir)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return r.Hash
}

func TestValidateRejects(t *testing.T) {
	ok := Spec{Version: Version, Name: "x", Nodes: 8, DurationSec: 3600}
	cases := map[string]func(*Spec){
		"version":        func(s *Spec) { s.Version = 99 },
		"no name":        func(s *Spec) { s.Name = "" },
		"no nodes":       func(s *Spec) { s.Nodes = 0 },
		"no duration":    func(s *Spec) { s.DurationSec = 0 },
		"bad weather":    func(s *Spec) { s.Weather = "monsoon" },
		"bad source":     func(s *Spec) { s.Workload.Source = "oracle" },
		"trace w/o path": func(s *Spec) { s.Workload.Source = SourceTrace },
		"path w/o trace": func(s *Spec) { s.Workload.TracePath = "x.csv" },
		"bad regime":     func(s *Spec) { s.Failures.Regime = "plague" },
		"neg offenders":  func(s *Spec) { s.Failures.Offenders = -1 },
		"many offenders": func(s *Spec) { s.Failures.Offenders = 9 },
		"neg rate":       func(s *Spec) { s.Failures.RateScale = -1 },
		"neg cap":        func(s *Spec) { s.PowerCapMW = -1 },
		"neg cap step":   func(s *Spec) { s.CapSchedule = []CapStep{{AfterSec: -1}} },
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("baseline spec invalid: %v", err)
	}
	for name, mut := range cases {
		s := ok
		mut(&s)
		if err := s.Validate(); !errors.Is(err, ErrScenario) {
			t.Errorf("%s: err = %v, want ErrScenario", name, err)
		}
	}
}

func TestLoadAndResolve(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{
		Version: Version, Name: "file-scn", Nodes: 16, DurationSec: 3600,
		Workload: WorkloadSpec{Source: SourceTrace, TracePath: "jobs.csv"},
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "scn.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "jobs.csv"),
		[]byte("job_id,nodes,submit,duration\n1,2,100,600\n2,4,200,1200\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Relative trace paths resolve against the spec file's directory.
	r, err := Resolve(path)
	if err != nil {
		t.Fatalf("Resolve(%s): %v", path, err)
	}
	if r.TraceStats.Jobs != 2 || len(r.Config.Workload) != 2 {
		t.Errorf("trace not replayed: stats %+v, %d jobs", r.TraceStats, len(r.Config.Workload))
	}

	// Unknown spec fields are rejected, not ignored.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":1,"name":"x","nodes":8,"duration_sec":60,"bogus":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); !errors.Is(err, ErrScenario) {
		t.Errorf("unknown field err = %v, want ErrScenario", err)
	}

	// A bare name resolves through the catalog; junk does not.
	if _, err := Resolve("winter-economizer"); err != nil {
		t.Errorf("catalog resolve: %v", err)
	}
	if _, err := Resolve("no-such"); err == nil {
		t.Error("junk name resolved")
	}
}

func TestMixedWorkloadOrdering(t *testing.T) {
	r, err := Resolve("mixed-replay")
	if err != nil {
		t.Fatalf("resolve mixed-replay: %v", err)
	}
	jobs := r.Config.Workload
	if len(jobs) == 0 {
		t.Fatal("mixed workload is empty")
	}
	var traced, generated int
	for i, j := range jobs {
		if i > 0 && jobs[i-1].SubmitTime > j.SubmitTime {
			t.Fatalf("mixed workload unsorted at %d", i)
		}
		if j.ID >= 1<<20 {
			traced++
		} else {
			generated++
		}
	}
	if traced == 0 || generated == 0 {
		t.Errorf("mixed workload lacks one side: %d traced, %d generated", traced, generated)
	}
	if r.TraceStats.Jobs != traced {
		t.Errorf("stats say %d trace jobs, workload holds %d", r.TraceStats.Jobs, traced)
	}
}

func TestFailureRegimes(t *testing.T) {
	base := Spec{Version: Version, Name: "x", Nodes: 32, DurationSec: 3600}

	off := base
	off.Failures.Regime = FailureOff
	r, err := Compile(off, "")
	if err != nil {
		t.Fatal(err)
	}
	if r.Config.FailureOffenders != -1 || r.Config.FailureRateScale >= 1e-6 {
		t.Errorf("off regime config: offenders %d rate %g",
			r.Config.FailureOffenders, r.Config.FailureRateScale)
	}

	epi := base
	epi.Failures.Regime = FailureEpidemic
	r, err = Compile(epi, "")
	if err != nil {
		t.Fatal(err)
	}
	if r.Config.FailureOffenders != 6 {
		t.Errorf("epidemic default offenders = %d, want 6", r.Config.FailureOffenders)
	}
}

// TestRunArchiveParity is the subsystem's end-to-end invariant: run a
// trace-replay scenario, archive it, and require the FromSource report to
// be byte-identical whether computed from the live memory source or from
// the re-opened archive — and invariant under the worker count.
func TestRunArchiveParity(t *testing.T) {
	r, err := Resolve("trace-replay")
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	d1, _, err := Run(r, 1)
	if err != nil {
		t.Fatalf("run workers=1: %v", err)
	}
	d4, _, err := Run(r, 4)
	if err != nil {
		t.Fatalf("run workers=4: %v", err)
	}
	rep1, err := r.Assess(d1.Source(), whatif.Weights{})
	if err != nil {
		t.Fatalf("assess memory: %v", err)
	}
	rep4, err := r.Assess(d4.Source(), whatif.Weights{})
	if err != nil {
		t.Fatalf("assess workers=4: %v", err)
	}
	j1 := mustJSON(t, rep1)
	if j4 := mustJSON(t, rep4); j1 != j4 {
		t.Errorf("worker count changed the report:\n w1 %s\n w4 %s", j1, j4)
	}
	if rep1.Label != "trace-replay" || rep1.Hash != r.Identity() || rep1.Seed != r.Seed {
		t.Errorf("report identity not stamped: %+v", rep1)
	}
	if rep1.JobsCompleted == 0 {
		t.Error("trace replay completed no jobs")
	}

	dir := t.TempDir()
	if err := core.WriteDatasets(dir, d1); err != nil {
		t.Fatalf("write datasets: %v", err)
	}
	arch, err := source.OpenArchive(source.ArchiveConfig{Dir: dir})
	if err != nil {
		t.Fatalf("open archive: %v", err)
	}
	repA, err := r.Assess(arch, whatif.Weights{})
	if err != nil {
		t.Fatalf("assess archive: %v", err)
	}
	if jA := mustJSON(t, repA); j1 != jA {
		t.Errorf("archive report differs from memory report:\n mem %s\n arc %s", j1, jA)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestBuiltinTraceName(t *testing.T) {
	// The catalog's replay scenarios must point at the embedded sample so
	// the catalog is self-contained (no external files).
	for _, name := range []string{"trace-replay", "mixed-replay"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Workload.TracePath != trace.BuiltinSampleName {
			t.Errorf("%s trace path = %q, want builtin", name, s.Workload.TracePath)
		}
	}
}
