package scenario

import (
	"fmt"
	"sort"

	"repro/internal/facility"
	"repro/internal/trace"
	"repro/internal/units"
)

// Catalog returns the checked-in scenario specs, sorted by name. Every
// entry is pinned by a golden regression test (tolerance 0), so a catalog
// name is a stable, citable run identity. The first three entries are the
// base configurations of the historical what-if studies and reproduce
// those studies' run shapes bit-for-bit.
func Catalog() []Spec {
	specs := []Spec{
		{
			Version: Version,
			Name:    "heatwave-summer",
			Description: "Mid-July afternoon heat wave on a 64-node floor: the " +
				"wet-bulb peak of the weather year under the calibrated generator. " +
				"Base of the heatwave-setpoint study.",
			Nodes:       64,
			DurationSec: 12 * units.SecondsPerHour,
			Weather:     WeatherSummerHeatwave,
		},
		{
			Version: Version,
			Name:    "winter-economizer",
			Description: "Deep-winter half day: cold wet bulbs keep the trim " +
				"chillers idle and the towers carry the load. Base of the " +
				"winter-economizer study.",
			Nodes:       64,
			DurationSec: 12 * units.SecondsPerHour,
			Weather:     WeatherWinter,
		},
		{
			Version: Version,
			Name:    "summer-capday",
			Description: "A full heat-wave day at nominal settings: the 24-hour " +
				"span the cap-placement study sweeps admission caps over.",
			Nodes:       64,
			DurationSec: 24 * units.SecondsPerHour,
			Weather:     WeatherSummerHeatwave,
		},
		{
			Version: Version,
			Name:    "chiller-outage",
			Description: "Heat-wave afternoon with the trim-chiller plant degraded " +
				"to one small inefficient unit and the supply setpoint forced up " +
				"to 26 °C — the thermal-excursion stress case.",
			Nodes:       64,
			DurationSec: 12 * units.SecondsPerHour,
			Weather:     WeatherSummerHeatwave,
			Tuning: facility.Tuning{
				SupplySetpointC: 26,
				ChillerKWPerTon: 2.5,
				ChillerUnitTons: 400,
			},
		},
		{
			Version: Version,
			Name:    "offender-epidemic",
			Description: "A bad manufacturing batch: the single NVLink " +
				"super-offender's error volume spread over six nodes across the " +
				"fleet, over a winter day at nominal cooling.",
			Nodes:       64,
			DurationSec: 24 * units.SecondsPerHour,
			Weather:     WeatherWinter,
			Failures:    FailureSpec{Regime: FailureEpidemic, Offenders: 6},
		},
		{
			Version: Version,
			Name:    "power-capped-brownout",
			Description: "Grid-emergency brownout: six hours in, admission drops " +
				"to a 0.12 MW ceiling for twelve hours, then the cap lifts — the " +
				"demand-response what-if over a heat-wave day.",
			Nodes:       64,
			DurationSec: 24 * units.SecondsPerHour,
			Weather:     WeatherSummerHeatwave,
			CapSchedule: []CapStep{
				{AfterSec: 6 * units.SecondsPerHour, CapMW: 0.12},
				{AfterSec: 18 * units.SecondsPerHour, CapMW: 0},
			},
		},
		{
			Version: Version,
			Name:    "trace-replay",
			Description: "Pure replay of the bundled 24-hour sample scheduler " +
				"trace, rebased onto a summer day: recorded submits, sizes and " +
				"app classes through the twin's own scheduler and plant.",
			Nodes:       64,
			DurationSec: 24 * units.SecondsPerHour,
			Weather:     WeatherSummer,
			Workload:    WorkloadSpec{Source: SourceTrace, TracePath: trace.BuiltinSampleName},
		},
		{
			Version: Version,
			Name:    "mixed-replay",
			Description: "The bundled sample trace replayed on top of a 60-job " +
				"generated background — the trace's campaigns compete with " +
				"synthetic traffic for the same summer-day floor.",
			Nodes:       64,
			DurationSec: 24 * units.SecondsPerHour,
			Weather:     WeatherSummer,
			Workload: WorkloadSpec{
				Source:    SourceMixed,
				Jobs:      60,
				TracePath: trace.BuiltinSampleName,
			},
		},
	}
	sort.Slice(specs, func(a, b int) bool { return specs[a].Name < specs[b].Name })
	return specs
}

// ByName looks up a catalog spec.
func ByName(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	names := ""
	for i, s := range Catalog() {
		if i > 0 {
			names += ", "
		}
		names += s.Name
	}
	return Spec{}, fmt.Errorf("%w: unknown scenario %q (have %s)", ErrScenario, name, names)
}
