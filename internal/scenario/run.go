package scenario

import (
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/whatif"
)

// Run executes the compiled scenario and returns the collected run data
// and the sim result. The run is bit-reproducible for any worker count
// (the engine's block-sharded roll-up contract), so the same scenario
// hash always yields byte-identical archives.
//
//lint:detroot
func Run(r *Resolved, workers int) (*core.RunData, *sim.Result, error) {
	cfg := r.Config
	cfg.Workers = workers
	return core.CollectRun(cfg)
}

// Assess reduces a RunSource holding one run of this scenario to its
// objective report — the same shape the what-if sweeps emit, stamped with
// the scenario's identity. It is pure FromSource (whatif.AssessSource), so
// the report is byte-identical whether computed from the live run's memory
// source or from the archive it was written to.
func (r *Resolved) Assess(src source.RunSource, w whatif.Weights) (whatif.Report, error) {
	if w == (whatif.Weights{}) {
		w = whatif.DefaultWeights()
	}
	rep, err := whatif.AssessSource(src, w)
	if err != nil {
		return rep, err
	}
	rep.Label = r.Spec.Name
	rep.Hash = r.Identity()
	rep.Seed = r.Seed
	return rep, nil
}
