// Package scenario defines the declarative scenario layer above the twin:
// a versioned JSON spec naming everything a run needs — topology/site
// preset, workload source (calibrated generator, replayed trace, or a mix),
// weather regime, failure regime, plant tuning and cap schedules, span and
// seed — plus a checked-in catalog of named scenarios pinned by golden
// regression tests. Every scenario compiles to a canonical FNV-1a content
// hash (trace content included) and a splitmix64-derived run identity, the
// same shape the what-if plane uses, so a scenario is a named,
// bit-reproducible artifact: the same spec produces byte-identical
// archives for any worker count, and the catalog names are stable inputs
// for studies, demos and benchmarks (ExaDigiT's versioned-scenario
// practice).
//
// The dependency order is scenario → whatif → sim: whatif studies
// reference scenarios by catalog name and callers resolve them here.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"repro/internal/facility"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// ErrScenario marks an invalid scenario spec; violations wrap it.
var ErrScenario = errors.New("scenario: invalid scenario")

// Version is the current spec schema version.
const Version = 1

// Weather regime names: seasonal placements of the run inside the weather
// model's year. "summer-heatwave" is the mid-July afternoon wet-bulb peak
// the historical what-if studies run under.
const (
	WeatherWinter         = "winter"
	WeatherSpring         = "spring"
	WeatherSummer         = "summer"
	WeatherSummerHeatwave = "summer-heatwave"
	WeatherAutumn         = "autumn"
)

// Workload source names.
const (
	SourceGenerator = "generator"
	SourceTrace     = "trace"
	SourceMixed     = "mixed"
)

// Failure regime names.
const (
	FailureNominal  = "nominal"
	FailureOff      = "off"
	FailureEpidemic = "epidemic"
)

// WorkloadSpec selects what drives the machine.
type WorkloadSpec struct {
	// Source is generator (default), trace, or mixed.
	Source string `json:"source,omitempty"`
	// Jobs overrides the generated job count (0 = node-time scaled).
	Jobs int `json:"jobs,omitempty"`
	// TracePath names the trace for trace/mixed sources: a CSV or JSON
	// file path, or the reserved trace.BuiltinSampleName.
	TracePath string `json:"trace_path,omitempty"`
}

// FailureSpec selects the failure-injection regime.
type FailureSpec struct {
	// Regime is nominal (default), off, or epidemic.
	Regime string `json:"regime,omitempty"`
	// Offenders sizes the epidemic regime's super-offender population
	// (0 = 6). Ignored outside the epidemic regime.
	Offenders int `json:"offenders,omitempty"`
	// RateScale overrides the scaled-run XID acceleration (0 = keep the
	// node-time-derived default).
	RateScale float64 `json:"rate_scale,omitempty"`
}

// CapStep is one step of a power-cap schedule, in run-relative seconds and
// megawatts (0 MW lifts the cap) — the human-writable form of sim.CapStep.
type CapStep struct {
	AfterSec int64   `json:"after_sec"`
	CapMW    float64 `json:"cap_mw"`
}

// Spec is the declarative scenario config. The zero value of every
// optional field means "the calibrated default"; Name and Description are
// cosmetic and excluded from the content hash.
type Spec struct {
	Version     int    `json:"version"`
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// Topology/site preset.
	Nodes int    `json:"nodes"`
	Site  string `json:"site,omitempty"` // "" or summit, frontier

	// Span and identity.
	DurationSec int64  `json:"duration_sec"`
	Seed        uint64 `json:"seed,omitempty"` // 0 = the calibrated 2020 seed

	Weather  string       `json:"weather,omitempty"`
	Workload WorkloadSpec `json:"workload,omitempty"`
	Failures FailureSpec  `json:"failures,omitempty"`

	// Operating-point knobs.
	Tuning      facility.Tuning `json:"tuning,omitempty"`
	PowerCapMW  float64         `json:"power_cap_mw,omitempty"`
	CapSchedule []CapStep       `json:"cap_schedule,omitempty"`
	Placement   string          `json:"placement,omitempty"`
}

// weatherOffsetSec maps a weather regime onto the run's start-time offset
// inside the weather model's year (weather derives deterministically from
// seed and absolute time, so regimes need no extra simulator knobs).
func weatherOffsetSec(regime string) (int64, error) {
	switch regime {
	case "", WeatherWinter:
		return 0, nil
	case WeatherSpring:
		return 91 * 24 * units.SecondsPerHour, nil
	case WeatherSummer:
		return 182 * 24 * units.SecondsPerHour, nil
	case WeatherSummerHeatwave:
		return whatif.MidJulyOffsetSec, nil
	case WeatherAutumn:
		return 274 * 24 * units.SecondsPerHour, nil
	}
	return 0, fmt.Errorf("%w: unknown weather regime %q", ErrScenario, regime)
}

// Validate checks the spec's own surface; cross-field physics (tuning
// bounds, placement names, site presets) is checked again when the
// compiled sim.Config validates.
func (s Spec) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("%w: unsupported version %d (want %d)", ErrScenario, s.Version, Version)
	}
	if s.Name == "" {
		return fmt.Errorf("%w: missing name", ErrScenario)
	}
	if s.Nodes <= 0 {
		return fmt.Errorf("%w: non-positive nodes %d", ErrScenario, s.Nodes)
	}
	if s.DurationSec <= 0 {
		return fmt.Errorf("%w: non-positive duration %d", ErrScenario, s.DurationSec)
	}
	if _, err := weatherOffsetSec(s.Weather); err != nil {
		return err
	}
	switch s.Workload.Source {
	case "", SourceGenerator:
		if s.Workload.TracePath != "" {
			return fmt.Errorf("%w: trace_path set with generator source", ErrScenario)
		}
	case SourceTrace, SourceMixed:
		if s.Workload.TracePath == "" {
			return fmt.Errorf("%w: %s source needs trace_path", ErrScenario, s.Workload.Source)
		}
	default:
		return fmt.Errorf("%w: unknown workload source %q", ErrScenario, s.Workload.Source)
	}
	if s.Workload.Jobs < 0 {
		return fmt.Errorf("%w: negative job count %d", ErrScenario, s.Workload.Jobs)
	}
	switch s.Failures.Regime {
	case "", FailureNominal, FailureOff, FailureEpidemic:
	default:
		return fmt.Errorf("%w: unknown failure regime %q", ErrScenario, s.Failures.Regime)
	}
	if s.Failures.Offenders < 0 || s.Failures.Offenders > s.Nodes {
		return fmt.Errorf("%w: offenders %d outside [0, %d]", ErrScenario, s.Failures.Offenders, s.Nodes)
	}
	if s.Failures.RateScale < 0 {
		return fmt.Errorf("%w: negative failure rate scale %g", ErrScenario, s.Failures.RateScale)
	}
	if s.PowerCapMW < 0 {
		return fmt.Errorf("%w: negative power cap %g MW", ErrScenario, s.PowerCapMW)
	}
	for i, st := range s.CapSchedule {
		if st.CapMW < 0 {
			return fmt.Errorf("%w: negative cap %g MW at schedule step %d", ErrScenario, st.CapMW, i)
		}
		if st.AfterSec < 0 {
			return fmt.Errorf("%w: negative after_sec %d at schedule step %d", ErrScenario, st.AfterSec, i)
		}
	}
	return nil
}

// Resolved is a compiled scenario: the spec, its canonical identity, the
// fully built simulator configuration, and the trace-conversion stats when
// the workload replays a trace.
type Resolved struct {
	Spec Spec
	// Hash is the canonical FNV-1a content hash over every semantic field
	// (name and description excluded; trace content included).
	Hash uint64
	// Seed is the derived run identity: splitmix64 over the base seed and
	// the hash, the same shape as whatif.Seed.
	Seed uint64
	// Config is the ready-to-run simulator configuration.
	Config sim.Config
	// TraceStats reports the trace → workload conversion (zero when the
	// workload is purely generated).
	TraceStats trace.Stats
}

// Identity returns the scenario's hex content hash.
func (r *Resolved) Identity() string { return fmt.Sprintf("%016x", r.Hash) }

// baseSeed is the calibrated default run seed (the sim.Scaled seed).
const baseSeed = 2020

// Compile validates the spec, resolves and hashes any trace, and builds
// the simulator configuration. Relative trace paths resolve against
// baseDir ("" = the working directory).
func Compile(s Spec, baseDir string) (*Resolved, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var traceRaw []byte
	if s.Workload.TracePath != "" {
		var err error
		if traceRaw, err = loadTrace(s.Workload.TracePath, baseDir); err != nil {
			return nil, err
		}
	}
	r := &Resolved{Spec: s, Hash: hashSpec(s, traceRaw)}
	seed := s.Seed
	if seed == 0 {
		seed = baseSeed
	}
	r.Seed = deriveSeed(seed, r.Hash)

	cfg := sim.Scaled(s.Nodes, s.DurationSec)
	cfg.Seed = seed
	cfg.Site = s.Site
	off, err := weatherOffsetSec(s.Weather)
	if err != nil {
		return nil, err
	}
	cfg.StartTime += off
	if s.Workload.Jobs > 0 {
		cfg.Jobs = s.Workload.Jobs
	}
	if err := buildWorkload(r, &cfg, traceRaw); err != nil {
		return nil, err
	}
	switch s.Failures.Regime {
	case FailureOff:
		cfg.FailureRateScale = 1e-9
		cfg.FailureOffenders = -1
	case FailureEpidemic:
		n := s.Failures.Offenders
		if n == 0 {
			n = 6
		}
		if n > cfg.Nodes {
			n = cfg.Nodes
		}
		cfg.FailureOffenders = n
	}
	if s.Failures.RateScale > 0 {
		cfg.FailureRateScale = s.Failures.RateScale
	}
	cfg.Plant = s.Tuning
	if s.PowerCapMW > 0 {
		cfg.PowerCap = units.Watts(s.PowerCapMW * units.WattsPerMW)
	}
	for _, st := range s.CapSchedule {
		cfg.PowerCapSchedule = append(cfg.PowerCapSchedule, sim.CapStep{
			AfterSec: st.AfterSec, CapW: units.Watts(st.CapMW * units.WattsPerMW),
		})
	}
	cfg.Placement = s.Placement
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrScenario, err)
	}
	r.Config = cfg
	return r, nil
}

// loadTrace resolves a trace path to its raw bytes: the builtin name maps
// to the bundled sample; anything else reads from disk (relative to
// baseDir when set).
func loadTrace(path, baseDir string) ([]byte, error) {
	if path == trace.BuiltinSampleName {
		return trace.BuiltinSampleBytes(), nil
	}
	if baseDir != "" && !filepath.IsAbs(path) {
		path = filepath.Join(baseDir, path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: trace: %w", err)
	}
	return raw, nil
}

// parseTrace decodes raw trace bytes, sniffing JSON (leading '[') vs CSV.
func parseTrace(raw []byte) ([]trace.Row, error) {
	trimmed := bytes.TrimLeft(raw, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		return trace.ParseJSON(bytes.NewReader(raw))
	}
	return trace.ParseCSV(bytes.NewReader(raw))
}

// mixedTraceIDOffset keeps replayed job identities disjoint from the
// generated population in mixed workloads.
const mixedTraceIDOffset = 1 << 20

// buildWorkload materializes the spec's workload source into the config:
// generator leaves the simulator's own generation path untouched, trace
// replaces it with the rebased replay, mixed merges both populations.
func buildWorkload(r *Resolved, cfg *sim.Config, traceRaw []byte) error {
	src := r.Spec.Workload.Source
	if src == "" || src == SourceGenerator {
		return nil
	}
	rows, err := parseTrace(traceRaw)
	if err != nil {
		return err
	}
	opt := trace.Options{
		MaxNodes:   cfg.Nodes,
		StartTime:  cfg.StartTime,
		HorizonSec: cfg.DurationSec,
		Seed:       cfg.Seed,
	}
	if src == SourceMixed {
		opt.IDOffset = mixedTraceIDOffset
	}
	jobs, stats, err := trace.Jobs(rows, opt)
	if err != nil {
		return err
	}
	r.TraceStats = stats
	if src == SourceMixed {
		gen, err := workload.Generate(workload.GenConfig{
			Seed:              cfg.Seed,
			StartTime:         cfg.StartTime,
			SpanSec:           cfg.DurationSec,
			Jobs:              cfg.Jobs,
			MaxNodes:          minInt(cfg.Nodes, 4608),
			ProjectsPerDomain: 6,
		})
		if err != nil {
			return err
		}
		jobs = append(jobs, gen...)
		sort.SliceStable(jobs, func(a, b int) bool {
			if jobs[a].SubmitTime != jobs[b].SubmitTime {
				return jobs[a].SubmitTime < jobs[b].SubmitTime
			}
			return jobs[a].ID < jobs[b].ID
		})
	}
	cfg.Workload = jobs
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// hashSpec computes the canonical FNV-1a content hash: every semantic
// field in fixed order, floats in shortest-roundtrip form, trace content
// (not path) hashed in, name and description excluded — two specs that
// run the same physics share an identity regardless of labeling.
func hashSpec(s Spec, traceRaw []byte) uint64 {
	h := fnv.New64a()
	wInt := func(k string, v int64) {
		h.Write([]byte(k))
		h.Write([]byte{'='})
		h.Write([]byte(strconv.FormatInt(v, 10)))
		h.Write([]byte{'\n'})
	}
	wStr := func(k, v string) {
		h.Write([]byte(k))
		h.Write([]byte{'='})
		h.Write([]byte(v))
		h.Write([]byte{'\n'})
	}
	wFloat := func(k string, v float64) {
		wStr(k, strconv.FormatFloat(v, 'g', -1, 64))
	}
	wInt("version", int64(s.Version))
	wInt("nodes", int64(s.Nodes))
	wStr("site", s.Site)
	wInt("duration_sec", s.DurationSec)
	wStr("seed", strconv.FormatUint(s.Seed, 10))
	wStr("weather", s.Weather)
	wStr("workload.source", s.Workload.Source)
	wInt("workload.jobs", int64(s.Workload.Jobs))
	if s.Workload.TracePath != "" {
		th := fnv.New64a()
		th.Write(traceRaw)
		wStr("workload.trace", strconv.FormatUint(th.Sum64(), 16))
	}
	wStr("failures.regime", s.Failures.Regime)
	wInt("failures.offenders", int64(s.Failures.Offenders))
	wFloat("failures.rate_scale", s.Failures.RateScale)
	wFloat("tuning.supply_setpoint_c", s.Tuning.SupplySetpointC)
	wFloat("tuning.tower_kw_per_ton", s.Tuning.TowerKWPerTon)
	wFloat("tuning.chiller_kw_per_ton", s.Tuning.ChillerKWPerTon)
	wFloat("tuning.tower_unit_tons", s.Tuning.TowerUnitTons)
	wFloat("tuning.chiller_unit_tons", s.Tuning.ChillerUnitTons)
	wFloat("tuning.stage_up_frac", s.Tuning.StageUpFrac)
	wFloat("tuning.stage_down_frac", s.Tuning.StageDownFrac)
	wFloat("power_cap_mw", s.PowerCapMW)
	for _, st := range s.CapSchedule {
		wStr("cap@"+strconv.FormatInt(st.AfterSec, 10),
			strconv.FormatFloat(st.CapMW, 'g', -1, 64))
	}
	wStr("placement", s.Placement)
	return h.Sum64()
}

// deriveSeed is the splitmix64 finalizer over (base, hash) — the same
// derivation the what-if plane uses, so identical physics gets identical
// run identity in both planes.
func deriveSeed(base, hash uint64) uint64 {
	z := base*0x9e3779b97f4a7c15 + hash
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Load reads a spec from a JSON file, rejecting unknown fields so typos in
// hand-written scenarios fail loudly.
func Load(path string) (Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("%w: %s: %v", ErrScenario, path, err)
	}
	return s, nil
}

// Resolve compiles a scenario given a catalog name or a spec-file path:
// names containing a path separator or a .json suffix load from disk
// (trace paths inside resolve against the file's directory), anything
// else looks up the catalog.
func Resolve(nameOrPath string) (*Resolved, error) {
	if filepath.Ext(nameOrPath) == ".json" || filepath.Dir(nameOrPath) != "." {
		spec, err := Load(nameOrPath)
		if err != nil {
			return nil, err
		}
		return Compile(spec, filepath.Dir(nameOrPath))
	}
	spec, err := ByName(nameOrPath)
	if err != nil {
		return nil, err
	}
	return Compile(spec, "")
}
