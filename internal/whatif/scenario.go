// Package whatif is the twin's what-if control plane: it sweeps named,
// validated operating-point scenarios (plant setpoints, staging
// thresholds, power-cap schedules, placement policies) over deterministic
// batch evaluations of the simulator, scores each run with the existing
// analyses, and searches the knob space with grid, coordinate-descent and
// cross-entropy strategies — the ExaDigiT-style "steer the plant in
// simulation" loop the paper's successors build on the same telemetry.
//
// Every evaluation is a reproducible artifact: a scenario's canonical
// hash plus the batch's base seed derive the run's seed, so a sweep log
// is bit-identical for any worker count.
package whatif

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"

	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/units"
)

// Param names one tunable knob of the scenario surface. All knob values
// are float64 so the search strategies treat the space uniformly;
// ParamPlacement takes the enum index (0 contiguous, 1 packed, 2 scatter).
type Param string

const (
	ParamSupplySetpointC Param = "supply_setpoint_c"
	ParamTowerKWPerTon   Param = "tower_kw_per_ton"
	ParamChillerKWPerTon Param = "chiller_kw_per_ton"
	ParamStageUpFrac     Param = "stage_up_frac"
	ParamStageDownFrac   Param = "stage_down_frac"
	ParamPowerCapMW      Param = "power_cap_mw"
	ParamPlacement       Param = "placement"
)

// Params lists every knob the surface knows, sorted by name.
func Params() []Param {
	return []Param{
		ParamChillerKWPerTon,
		ParamPlacement,
		ParamPowerCapMW,
		ParamStageDownFrac,
		ParamStageUpFrac,
		ParamSupplySetpointC,
		ParamTowerKWPerTon,
	}
}

// ErrScenario marks an invalid scenario; violations wrap it.
var ErrScenario = errors.New("whatif: invalid scenario")

// Scenario is one named operating point: a sparse knob assignment over
// the base configuration, optionally with a power-cap step schedule.
// The JSON form is the declarative scenario-config schema (see
// EXPERIMENTS.md).
type Scenario struct {
	Name        string            `json:"name,omitempty"`
	Params      map[Param]float64 `json:"params,omitempty"`
	CapSchedule []sim.CapStep     `json:"cap_schedule,omitempty"`
}

// paramValue is one knob assignment in canonical (sorted) order.
type paramValue struct {
	Param Param
	Value float64
}

// sorted returns the scenario's knob assignments sorted by parameter
// name — the canonical order every deterministic consumer iterates in.
func (s Scenario) sorted() []paramValue {
	out := make([]paramValue, 0, len(s.Params))
	for p, v := range s.Params {
		out = append(out, paramValue{p, v})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Param < out[b].Param })
	return out
}

// placementNames maps the ParamPlacement enum index to the sim.Config
// placement string.
var placementNames = [...]string{"contiguous", "packed", "scatter"}

// Apply overlays the scenario's knobs on a base configuration and
// validates the result. The base is not modified.
func (s Scenario) Apply(base sim.Config) (sim.Config, error) {
	cfg := base
	for _, pv := range s.sorted() {
		switch pv.Param {
		case ParamSupplySetpointC:
			cfg.Plant.SupplySetpointC = pv.Value
		case ParamTowerKWPerTon:
			cfg.Plant.TowerKWPerTon = pv.Value
		case ParamChillerKWPerTon:
			cfg.Plant.ChillerKWPerTon = pv.Value
		case ParamStageUpFrac:
			cfg.Plant.StageUpFrac = pv.Value
		case ParamStageDownFrac:
			cfg.Plant.StageDownFrac = pv.Value
		case ParamPowerCapMW:
			if pv.Value < 0 {
				return cfg, fmt.Errorf("%w: negative power cap %g MW", ErrScenario, pv.Value)
			}
			cfg.PowerCap = units.Watts(pv.Value * units.WattsPerMW)
		case ParamPlacement:
			idx := int(pv.Value)
			if pv.Value-float64(idx) > 0 || float64(idx)-pv.Value > 0 || idx < 0 || idx >= len(placementNames) {
				return cfg, fmt.Errorf("%w: placement index %g outside {0, 1, 2}", ErrScenario, pv.Value)
			}
			cfg.Placement = placementNames[idx]
		default:
			return cfg, fmt.Errorf("%w: unknown parameter %q", ErrScenario, pv.Param)
		}
	}
	if len(s.CapSchedule) > 0 {
		cfg.PowerCapSchedule = s.CapSchedule
	}
	if err := cfg.Validate(); err != nil {
		return cfg, fmt.Errorf("%w: %w", ErrScenario, err)
	}
	return cfg, nil
}

// Placement resolves the scenario's placement knob to the scheduler enum
// (for display); the base placement when the knob is unset.
func (s Scenario) Placement(base string) string {
	if v, ok := s.Params[ParamPlacement]; ok {
		if idx := int(v); idx >= 0 && idx < len(placementNames) {
			return placementNames[idx]
		}
	}
	if base == "" {
		return scheduler.PlaceContiguous.String()
	}
	return base
}

// Hash returns the scenario's canonical content hash: FNV-1a over the
// sorted knob assignments and the cap schedule. The name is cosmetic and
// excluded, so two scenarios with identical knobs share an identity —
// and therefore a derived seed — regardless of labeling.
func (s Scenario) Hash() uint64 {
	h := fnv.New64a()
	for _, pv := range s.sorted() {
		h.Write([]byte(pv.Param))
		h.Write([]byte{'='})
		h.Write([]byte(strconv.FormatFloat(pv.Value, 'g', -1, 64)))
		h.Write([]byte{'\n'})
	}
	for _, st := range s.CapSchedule {
		h.Write([]byte("cap@"))
		h.Write([]byte(strconv.FormatInt(st.AfterSec, 10)))
		h.Write([]byte{'='})
		h.Write([]byte(strconv.FormatFloat(float64(st.CapW), 'g', -1, 64)))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// Seed derives the run seed for a scenario from the batch's base seed and
// the scenario hash (splitmix64 finalizer over the combination), giving
// every scenario a reproducible identity independent of batch order.
func Seed(base uint64, s Scenario) uint64 {
	z := base*0x9e3779b97f4a7c15 + s.Hash()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Label returns the scenario's display name, synthesizing a stable
// "param=value" form when unnamed.
func (s Scenario) Label() string {
	if s.Name != "" {
		return s.Name
	}
	if len(s.Params) == 0 && len(s.CapSchedule) == 0 {
		return "nominal"
	}
	out := ""
	for _, pv := range s.sorted() {
		if out != "" {
			out += " "
		}
		out += string(pv.Param) + "=" + strconv.FormatFloat(pv.Value, 'g', -1, 64)
	}
	if len(s.CapSchedule) > 0 {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("cap-schedule[%d]", len(s.CapSchedule))
	}
	return out
}
