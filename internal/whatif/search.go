package whatif

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Axis is one dimension of the search space: the knob and the candidate
// values the strategies may assign to it. Values must be ascending.
type Axis struct {
	Param  Param     `json:"param"`
	Values []float64 `json:"values"`
}

// validateAxes checks the axes are well-formed.
func validateAxes(axes []Axis) error {
	if len(axes) == 0 {
		return fmt.Errorf("%w: no axes", ErrScenario)
	}
	seen := map[Param]bool{}
	for _, ax := range axes {
		if len(ax.Values) == 0 {
			return fmt.Errorf("%w: axis %q has no values", ErrScenario, ax.Param)
		}
		if seen[ax.Param] {
			return fmt.Errorf("%w: duplicate axis %q", ErrScenario, ax.Param)
		}
		seen[ax.Param] = true
		for i := 1; i < len(ax.Values); i++ {
			if ax.Values[i] <= ax.Values[i-1] {
				return fmt.Errorf("%w: axis %q values not ascending at %d", ErrScenario, ax.Param, i)
			}
		}
	}
	return nil
}

// Grid expands the axes into their full cartesian product, first axis
// slowest, in deterministic order.
func Grid(axes []Axis) []Scenario {
	total := 1
	for _, ax := range axes {
		total *= len(ax.Values)
	}
	out := make([]Scenario, 0, total)
	idx := make([]int, len(axes))
	for {
		p := make(map[Param]float64, len(axes))
		for a, ax := range axes {
			p[ax.Param] = ax.Values[idx[a]]
		}
		out = append(out, Scenario{Params: p})
		a := len(axes) - 1
		for a >= 0 {
			idx[a]++
			if idx[a] < len(axes[a].Values) {
				break
			}
			idx[a] = 0
			a--
		}
		if a < 0 {
			return out
		}
	}
}

// Sensitivity is the score range a single knob commands with every other
// knob pinned at the best point — the per-knob lever arm of the sweep.
type Sensitivity struct {
	Param Param `json:"param"`
	// BestValue is the knob's value at the best point.
	BestValue float64 `json:"best_value"`
	// MinScore/MaxScore bound the score along the knob's axis line
	// through the best point (only over evaluated points).
	MinScore float64 `json:"min_score"`
	MaxScore float64 `json:"max_score"`
	// Swing = MaxScore - MinScore.
	Swing float64 `json:"swing"`
}

// SweepResult is one strategy's complete output: the machine-readable
// sweep log (Evaluated), the chosen operating point, the baseline, the
// energy/violation Pareto frontier, and per-knob sensitivities.
type SweepResult struct {
	Strategy string `json:"strategy"`
	BaseSeed uint64 `json:"base_seed"`
	// Evaluated lists every distinct evaluated scenario in evaluation
	// order — the sweep log. Bit-identical for any worker count.
	Evaluated []Report `json:"evaluated"`
	// Baseline is the nominal (no-knob) operating point's report.
	Baseline Report `json:"baseline"`
	// Best is the lowest-score evaluated report (ties: first evaluated).
	Best Report `json:"best"`
	// Pareto is the non-dominated frontier over (TotalEnergyMWh,
	// ViolationSec), ascending by energy.
	Pareto []Report `json:"pareto"`
	// Sensitivity ranks the knobs by their score swing at the best point.
	Sensitivity []Sensitivity `json:"sensitivity,omitempty"`
}

// WriteJSON emits the sweep log as indented JSON. Map keys serialize in
// sorted order, so the bytes are deterministic.
func (r *SweepResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary renders the human-readable digest: best point, baseline
// comparison, knob sensitivities and the frontier.
func (r *SweepResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy %s: %d evaluations\n", r.Strategy, len(r.Evaluated))
	fmt.Fprintf(&b, "baseline  %-28s score %10.3f  energy %8.3f MWh  PUE %.4f  violations %6.0fs\n",
		r.Baseline.Label, r.Baseline.Score, r.Baseline.TotalEnergyMWh, r.Baseline.MeanPUE, r.Baseline.ViolationSec)
	fmt.Fprintf(&b, "best      %-28s score %10.3f  energy %8.3f MWh  PUE %.4f  violations %6.0fs\n",
		r.Best.Label, r.Best.Score, r.Best.TotalEnergyMWh, r.Best.MeanPUE, r.Best.ViolationSec)
	if r.Baseline.Score > 0 {
		fmt.Fprintf(&b, "improvement over baseline: %+.2f%%\n",
			100*(r.Baseline.Score-r.Best.Score)/r.Baseline.Score)
	}
	if len(r.Sensitivity) > 0 {
		b.WriteString("knob sensitivity (score swing along each axis through the best point):\n")
		for _, s := range r.Sensitivity {
			fmt.Fprintf(&b, "  %-22s best %-10.4g swing %10.3f\n", s.Param, s.BestValue, s.Swing)
		}
	}
	fmt.Fprintf(&b, "pareto frontier (energy MWh, violation s): %d points\n", len(r.Pareto))
	for _, p := range r.Pareto {
		fmt.Fprintf(&b, "  %8.3f MWh  %6.0fs  %s\n", p.TotalEnergyMWh, p.ViolationSec, p.Label)
	}
	return b.String()
}

// ParetoFront filters the non-dominated reports over (TotalEnergyMWh,
// ViolationSec), minimizing both, ascending by energy.
func ParetoFront(reports []Report) []Report {
	idx := make([]int, len(reports))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ra, rb := &reports[idx[a]], &reports[idx[b]]
		if ra.TotalEnergyMWh != rb.TotalEnergyMWh {
			return ra.TotalEnergyMWh < rb.TotalEnergyMWh
		}
		return ra.ViolationSec < rb.ViolationSec
	})
	var out []Report
	bestViol := math.Inf(1)
	for _, i := range idx {
		r := reports[i]
		if r.ViolationSec < bestViol {
			out = append(out, r)
			bestViol = r.ViolationSec
		}
	}
	return out
}

// bestOf returns the index of the lowest-score report (first wins ties).
func bestOf(reports []Report) int {
	best := 0
	for i := 1; i < len(reports); i++ {
		if reports[i].Score < reports[best].Score {
			best = i
		}
	}
	return best
}

// sensitivities computes the per-knob score swing along each axis line
// through the best point, using only already-evaluated reports.
func sensitivities(axes []Axis, evaluated []Report, best Report) []Sensitivity {
	out := make([]Sensitivity, 0, len(axes))
	for _, ax := range axes {
		s := Sensitivity{
			Param:     ax.Param,
			BestValue: best.Scenario.Params[ax.Param],
			MinScore:  math.Inf(1),
			MaxScore:  math.Inf(-1),
		}
		for i := range evaluated {
			if !onAxisLine(&evaluated[i].Scenario, &best.Scenario, ax.Param) {
				continue
			}
			if v := evaluated[i].Score; v < s.MinScore {
				s.MinScore = v
			}
			if v := evaluated[i].Score; v > s.MaxScore {
				s.MaxScore = v
			}
		}
		if s.MaxScore >= s.MinScore {
			s.Swing = s.MaxScore - s.MinScore
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Swing > out[b].Swing })
	return out
}

// onAxisLine reports whether scenario s differs from ref on at most the
// given parameter (identical everywhere else), by comparing canonical
// signatures with that parameter masked out.
func onAxisLine(s, ref *Scenario, p Param) bool {
	return signatureWithout(s, p) == signatureWithout(ref, p)
}

// signatureWithout renders the scenario's canonical form with one
// parameter removed — exact float identity via the formatted value.
func signatureWithout(s *Scenario, p Param) string {
	var b strings.Builder
	for _, pv := range s.sorted() {
		if pv.Param == p {
			continue
		}
		b.WriteString(string(pv.Param))
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(pv.Value, 'g', -1, 64))
		b.WriteByte('\n')
	}
	for _, st := range s.CapSchedule {
		fmt.Fprintf(&b, "cap@%d=%s\n", st.AfterSec,
			strconv.FormatFloat(float64(st.CapW), 'g', -1, 64))
	}
	return b.String()
}

// evalCache runs batches while memoizing per-scenario reports by
// canonical hash, so iterative strategies never pay for a revisit.
type evalCache struct {
	base   sim.Config
	opt    Options
	byHash map[uint64]Report
	sweep  []Report // every distinct evaluation, in order
}

func newEvalCache(base sim.Config, opt Options) *evalCache {
	return &evalCache{base: base, opt: opt, byHash: map[uint64]Report{}}
}

// run evaluates the scenarios (skipping cached ones) and returns the
// reports in argument order.
func (c *evalCache) run(scns []Scenario) ([]Report, error) {
	var misses []Scenario
	for _, s := range scns {
		h := s.Hash()
		if _, ok := c.byHash[h]; !ok {
			c.byHash[h] = Report{} // reserve to dedup within this call
			misses = append(misses, s)
		}
	}
	if len(misses) > 0 {
		reports, err := Evaluate(c.base, misses, c.opt)
		if err != nil {
			return nil, err
		}
		for i, s := range misses {
			c.byHash[s.Hash()] = reports[i]
			c.sweep = append(c.sweep, reports[i])
		}
	}
	out := make([]Report, len(scns))
	for i, s := range scns {
		out[i] = c.byHash[s.Hash()]
	}
	return out, nil
}

// finish assembles the common SweepResult fields from the cache state.
func (c *evalCache) finish(strategy string, axes []Axis) *SweepResult {
	r := &SweepResult{
		Strategy:  strategy,
		BaseSeed:  c.base.Seed,
		Evaluated: c.sweep,
	}
	r.Baseline = c.byHash[Scenario{}.Hash()]
	r.Best = c.sweep[bestOf(c.sweep)]
	r.Pareto = ParetoFront(c.sweep)
	if axes != nil {
		r.Sensitivity = sensitivities(axes, c.sweep, r.Best)
	}
	return r
}

// RunGrid exhaustively evaluates the axes' cartesian product plus the
// nominal baseline.
func RunGrid(base sim.Config, axes []Axis, opt Options) (*SweepResult, error) {
	if err := validateAxes(axes); err != nil {
		return nil, err
	}
	cache := newEvalCache(base, opt)
	if _, err := cache.run(append([]Scenario{{Name: "nominal"}}, Grid(axes)...)); err != nil {
		return nil, err
	}
	return cache.finish("grid", axes), nil
}

// RunCoordinateDescent starts from the nominal point and sweeps one axis
// at a time, pinning each knob at its line minimum, for the given number
// of rounds (or until a round changes nothing). Revisited points hit the
// evaluation cache.
func RunCoordinateDescent(base sim.Config, axes []Axis, rounds int, opt Options) (*SweepResult, error) {
	if err := validateAxes(axes); err != nil {
		return nil, err
	}
	if rounds <= 0 {
		rounds = 2
	}
	cache := newEvalCache(base, opt)
	if _, err := cache.run([]Scenario{{Name: "nominal"}}); err != nil {
		return nil, err
	}
	// current holds each knob's chosen value index into its axis.
	current := map[Param]int{}
	valueOf := map[Param][]float64{}
	for _, ax := range axes {
		valueOf[ax.Param] = ax.Values
	}
	for round := 0; round < rounds; round++ {
		changed := false
		for _, ax := range axes {
			line := make([]Scenario, 0, len(ax.Values))
			for _, v := range ax.Values {
				p := make(map[Param]float64, len(current)+1)
				for _, ap := range axes {
					if ci, ok := current[ap.Param]; ok {
						p[ap.Param] = valueOf[ap.Param][ci]
					}
				}
				p[ax.Param] = v
				line = append(line, Scenario{Params: p})
			}
			reports, err := cache.run(line)
			if err != nil {
				return nil, err
			}
			best := bestOf(reports)
			if cur, ok := current[ax.Param]; !ok || cur != best {
				current[ax.Param] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return cache.finish("cd", axes), nil
}

// CEMConfig sizes the cross-entropy search.
type CEMConfig struct {
	Population int // samples per iteration (default 16)
	Elite      int // elites refitting the distribution (default 4)
	Iterations int // refinement rounds (default 4)
}

// RunCEM searches the axes with a small cross-entropy method: sample
// knob vectors from per-axis truncated normals quantized to the axis
// values, score them, refit mean/std on the elite fraction, and repeat.
// All randomness derives from the base seed, so the sweep is exactly
// reproducible.
func RunCEM(base sim.Config, axes []Axis, cem CEMConfig, opt Options) (*SweepResult, error) {
	if err := validateAxes(axes); err != nil {
		return nil, err
	}
	if cem.Population <= 0 {
		cem.Population = 16
	}
	if cem.Elite <= 0 {
		cem.Elite = 4
	}
	if cem.Elite > cem.Population {
		cem.Elite = cem.Population
	}
	if cem.Iterations <= 0 {
		cem.Iterations = 4
	}
	cache := newEvalCache(base, opt)
	if _, err := cache.run([]Scenario{{Name: "nominal"}}); err != nil {
		return nil, err
	}
	src := rng.New(base.Seed).Split("whatif-cem")
	// Distribution state per axis: mean and std over the value range.
	mean := make([]float64, len(axes))
	std := make([]float64, len(axes))
	for a, ax := range axes {
		lo, hi := ax.Values[0], ax.Values[len(ax.Values)-1]
		mean[a] = (lo + hi) / 2
		std[a] = (hi - lo) / 2
		if std[a] <= 0 {
			std[a] = 1
		}
	}
	for iter := 0; iter < cem.Iterations; iter++ {
		batch := make([]Scenario, cem.Population)
		for s := range batch {
			p := make(map[Param]float64, len(axes))
			for a, ax := range axes {
				lo, hi := ax.Values[0], ax.Values[len(ax.Values)-1]
				v := src.TruncNormal(mean[a], std[a], lo, hi)
				p[ax.Param] = snap(ax.Values, v)
			}
			batch[s] = Scenario{Params: p}
		}
		reports, err := cache.run(batch)
		if err != nil {
			return nil, err
		}
		order := make([]int, len(reports))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return reports[order[a]].Score < reports[order[b]].Score
		})
		// Refit on the elites, with a floor keeping exploration alive.
		for a, ax := range axes {
			var m, m2 float64
			for e := 0; e < cem.Elite; e++ {
				v := reports[order[e]].Scenario.Params[ax.Param]
				m += v
				m2 += v * v
			}
			n := float64(cem.Elite)
			m /= n
			variance := m2/n - m*m
			if variance < 0 {
				variance = 0
			}
			mean[a] = m
			std[a] = math.Sqrt(variance)
			if floor := axisStepFloor(ax.Values); std[a] < floor {
				std[a] = floor
			}
		}
	}
	return cache.finish("cem", axes), nil
}

// axisStepFloor returns half the smallest gap between axis values — the
// exploration floor that keeps CEM from collapsing onto one quantized
// point.
func axisStepFloor(values []float64) float64 {
	if len(values) < 2 {
		return 1e-6
	}
	minGap := math.Inf(1)
	for i := 1; i < len(values); i++ {
		if g := values[i] - values[i-1]; g < minGap {
			minGap = g
		}
	}
	return minGap / 2
}

// snap quantizes v to the nearest axis value (ties toward the lower).
func snap(values []float64, v float64) float64 {
	best := values[0]
	bestD := math.Abs(v - best)
	for _, c := range values[1:] {
		if d := math.Abs(v - c); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}
