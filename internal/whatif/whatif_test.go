package whatif

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/sim"
)

// hashScenarioA/B are fixed probe scenarios; their hashes are pinned so a
// refactor of the canonical form (which would silently re-seed every
// archived sweep) fails loudly.
func hashScenarioA() Scenario {
	return Scenario{Params: map[Param]float64{
		ParamSupplySetpointC: 19.5,
		ParamStageDownFrac:   0.86,
	}}
}

func hashScenarioB() Scenario {
	return Scenario{
		Params: map[Param]float64{
			ParamPowerCapMW: 0.14,
			ParamPlacement:  2,
		},
		CapSchedule: []sim.CapStep{{AfterSec: 3600, CapW: 120000}},
	}
}

func TestScenarioHashStability(t *testing.T) {
	cases := []struct {
		name string
		scn  Scenario
		want uint64
	}{
		{"empty", Scenario{}, 0xcbf29ce484222325}, // FNV-1a offset basis
		{"knobs", hashScenarioA(), 0x70108e8da85e5e2a},
		{"cap-schedule", hashScenarioB(), 0xaa58143a7b083ce5},
	}
	for _, tc := range cases {
		if got := tc.scn.Hash(); got != tc.want {
			t.Errorf("%s: Hash() = %#016x, want %#016x", tc.name, got, tc.want)
		}
	}
	// The name is cosmetic: renaming must not change the identity.
	named := hashScenarioA()
	named.Name = "renamed"
	if named.Hash() != hashScenarioA().Hash() {
		t.Errorf("Hash() changed with Name: %#x vs %#x", named.Hash(), hashScenarioA().Hash())
	}
}

func TestSeedDerivation(t *testing.T) {
	const want = uint64(4258295761522078221)
	if got := Seed(2020, hashScenarioA()); got != want {
		t.Errorf("Seed(2020, a) = %d, want %d", got, want)
	}
	if Seed(2020, hashScenarioA()) == Seed(2021, hashScenarioA()) {
		t.Error("Seed ignores the base seed")
	}
	if Seed(2020, hashScenarioA()) == Seed(2020, hashScenarioB()) {
		t.Error("Seed ignores the scenario")
	}
	if Seed(2020, Scenario{}) == 0 {
		t.Error("nominal seed must not collapse to zero")
	}
}

func TestScenarioLabel(t *testing.T) {
	if got := (Scenario{}).Label(); got != "nominal" {
		t.Errorf("empty label = %q, want nominal", got)
	}
	if got := hashScenarioA().Label(); got != "stage_down_frac=0.86 supply_setpoint_c=19.5" {
		t.Errorf("label = %q", got)
	}
	if got := hashScenarioB().Label(); got != "placement=2 power_cap_mw=0.14 cap-schedule[1]" {
		t.Errorf("label = %q", got)
	}
	named := hashScenarioA()
	named.Name = "warm-water"
	if got := named.Label(); got != "warm-water" {
		t.Errorf("named label = %q", got)
	}
}

func TestScenarioApply(t *testing.T) {
	base := sim.Scaled(64, 3600)
	scn := Scenario{Params: map[Param]float64{
		ParamSupplySetpointC: 23,
		ParamTowerKWPerTon:   0.2,
		ParamChillerKWPerTon: 0.8,
		ParamStageUpFrac:     1.05,
		ParamStageDownFrac:   0.85,
		ParamPowerCapMW:      0.5,
		ParamPlacement:       1,
	}}
	cfg, err := scn.Apply(base)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if math.Abs(cfg.Plant.SupplySetpointC-23) > 1e-12 ||
		math.Abs(cfg.Plant.TowerKWPerTon-0.2) > 1e-12 ||
		math.Abs(cfg.Plant.StageDownFrac-0.85) > 1e-12 {
		t.Errorf("plant knobs not applied: %+v", cfg.Plant)
	}
	if math.Abs(float64(cfg.PowerCap)-0.5e6) > 1e-6 {
		t.Errorf("PowerCap = %v, want 0.5 MW", cfg.PowerCap)
	}
	if cfg.Placement != "packed" {
		t.Errorf("Placement = %q, want packed", cfg.Placement)
	}
	if base.Placement != "" || base.PowerCap != 0 {
		t.Error("Apply mutated the base config")
	}
}

func TestScenarioApplyRejects(t *testing.T) {
	base := sim.Scaled(64, 3600)
	cases := []struct {
		name string
		scn  Scenario
	}{
		{"unknown param", Scenario{Params: map[Param]float64{"mystery_knob": 1}}},
		{"negative cap", Scenario{Params: map[Param]float64{ParamPowerCapMW: -1}}},
		{"fractional placement", Scenario{Params: map[Param]float64{ParamPlacement: 1.5}}},
		{"placement out of range", Scenario{Params: map[Param]float64{ParamPlacement: 3}}},
		{"setpoint out of band", Scenario{Params: map[Param]float64{ParamSupplySetpointC: 60}}},
		{"inverted staging", Scenario{Params: map[Param]float64{
			ParamStageUpFrac: 0.8, ParamStageDownFrac: 0.9}}},
		{"bad cap schedule", Scenario{CapSchedule: []sim.CapStep{
			{AfterSec: 100, CapW: 1e6}, {AfterSec: 100, CapW: 2e6}}}},
	}
	for _, tc := range cases {
		if _, err := tc.scn.Apply(base); !errors.Is(err, ErrScenario) {
			t.Errorf("%s: err = %v, want ErrScenario", tc.name, err)
		}
	}
}

func TestGridExpansion(t *testing.T) {
	axes := []Axis{
		{Param: ParamSupplySetpointC, Values: []float64{18, 21, 24}},
		{Param: ParamStageDownFrac, Values: []float64{0.85, 0.92}},
	}
	grid := Grid(axes)
	if len(grid) != 6 {
		t.Fatalf("grid size = %d, want 6", len(grid))
	}
	// First axis slowest: setpoint changes every 2 points.
	if got := grid[0].Params[ParamSupplySetpointC]; math.Abs(got-18) > 1e-12 {
		t.Errorf("grid[0] setpoint = %g", got)
	}
	if got := grid[1].Params[ParamStageDownFrac]; math.Abs(got-0.92) > 1e-12 {
		t.Errorf("grid[1] deadband = %g", got)
	}
	if got := grid[5].Params[ParamSupplySetpointC]; math.Abs(got-24) > 1e-12 {
		t.Errorf("grid[5] setpoint = %g", got)
	}
	seen := map[uint64]bool{}
	for _, s := range grid {
		if seen[s.Hash()] {
			t.Fatalf("duplicate grid point %s", s.Label())
		}
		seen[s.Hash()] = true
	}
}

func TestValidateAxes(t *testing.T) {
	cases := []struct {
		name string
		axes []Axis
	}{
		{"empty", nil},
		{"no values", []Axis{{Param: ParamSupplySetpointC}}},
		{"duplicate", []Axis{
			{Param: ParamSupplySetpointC, Values: []float64{18}},
			{Param: ParamSupplySetpointC, Values: []float64{21}}}},
		{"descending", []Axis{{Param: ParamSupplySetpointC, Values: []float64{21, 18}}}},
	}
	for _, tc := range cases {
		if err := validateAxes(tc.axes); !errors.Is(err, ErrScenario) {
			t.Errorf("%s: err = %v, want ErrScenario", tc.name, err)
		}
	}
	ok := []Axis{{Param: ParamSupplySetpointC, Values: []float64{18, 21.1, 24}}}
	if err := validateAxes(ok); err != nil {
		t.Errorf("valid axes rejected: %v", err)
	}
}

func TestParetoFront(t *testing.T) {
	mk := func(label string, energy, viol float64) Report {
		return Report{Label: label, TotalEnergyMWh: energy, ViolationSec: viol}
	}
	reports := []Report{
		mk("hot-cheap", 0.80, 120), // frontier: cheapest
		mk("dominated", 0.90, 120), // same violations, more energy
		mk("balanced", 0.85, 30),   // frontier
		mk("cold-dear", 0.95, 0),   // frontier: zero violations
		mk("worse-cold", 0.97, 0),  // dominated by cold-dear
	}
	front := ParetoFront(reports)
	if len(front) != 3 {
		t.Fatalf("frontier size = %d, want 3 (%v)", len(front), front)
	}
	want := []string{"hot-cheap", "balanced", "cold-dear"}
	for i, w := range want {
		if front[i].Label != w {
			t.Errorf("front[%d] = %s, want %s", i, front[i].Label, w)
		}
	}
}

// goldenBase is the small floor behind the golden grid and the
// reproducibility tests: 64 nodes for one hour of a mid-July afternoon.
func goldenBase() sim.Config {
	cfg := sim.Scaled(64, 3600)
	cfg.StartTime += midJulyOffsetSec
	return cfg
}

func goldenAxes() []Axis {
	return []Axis{{Param: ParamSupplySetpointC, Values: []float64{18.0, 21.1, 24.0}}}
}

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.6f, want %.6f (±%g)", name, got, want, tol)
	}
}

// TestGoldenGridReport pins the objective report of a 3-point setpoint
// grid on the small floor. These numbers are the package's contract: a
// change here means archived sweep logs no longer reproduce.
func TestGoldenGridReport(t *testing.T) {
	res, err := RunGrid(goldenBase(), goldenAxes(), Options{Workers: 2})
	if err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	if len(res.Evaluated) != 4 { // nominal + 3 grid points
		t.Fatalf("evaluations = %d, want 4", len(res.Evaluated))
	}

	const tol = 1e-5
	base := res.Baseline
	within(t, "baseline PUE", base.MeanPUE, 1.190271, tol)
	within(t, "baseline total MWh", base.TotalEnergyMWh, 0.093659, tol)
	within(t, "baseline IT MWh", base.ITEnergyMWh, 0.078687, tol)
	within(t, "baseline overcooling", base.OvercoolingTonH, 1.4682, 1e-3)
	within(t, "baseline score", base.Score, 0.123022, tol)
	if base.ViolationSec != 0 || base.JobsSkipped != 0 || base.Failures != 0 {
		t.Errorf("baseline viol/skip/fail = %v/%d/%d, want 0",
			base.ViolationSec, base.JobsSkipped, base.Failures)
	}
	if base.JobsCompleted != 6 {
		t.Errorf("baseline jobs completed = %d, want 6", base.JobsCompleted)
	}

	wantScores := map[string]struct{ pue, tot, score float64 }{
		"supply_setpoint_c=18":   {1.277544, 0.100526, 0.129889},
		"supply_setpoint_c=21.1": {1.190604, 0.093685, 0.123048},
		"supply_setpoint_c=24":   {1.105139, 0.086960, 0.116323},
	}
	found := 0
	for _, r := range res.Evaluated {
		w, ok := wantScores[r.Label]
		if !ok {
			continue
		}
		found++
		within(t, r.Label+" PUE", r.MeanPUE, w.pue, tol)
		within(t, r.Label+" total MWh", r.TotalEnergyMWh, w.tot, tol)
		within(t, r.Label+" score", r.Score, w.score, tol)
	}
	if found != 3 {
		t.Errorf("matched %d of 3 golden grid points", found)
	}

	// On this floor a warmer loop is strictly cheaper with no violations,
	// so the best point is the 24 °C corner and it beats nominal.
	if res.Best.Label != "supply_setpoint_c=24" {
		t.Errorf("best = %s, want supply_setpoint_c=24", res.Best.Label)
	}
	if !(res.Best.Score < res.Baseline.Score) {
		t.Errorf("best score %.6f does not beat baseline %.6f",
			res.Best.Score, res.Baseline.Score)
	}
	if len(res.Pareto) == 0 {
		t.Error("empty Pareto frontier")
	}
	if len(res.Sensitivity) != 1 || res.Sensitivity[0].Param != ParamSupplySetpointC {
		t.Fatalf("sensitivity = %+v", res.Sensitivity)
	}
	if res.Sensitivity[0].Swing <= 0 {
		t.Error("setpoint swing should be positive on this floor")
	}
}

// TestBatchBitReproducible checks the acceptance property directly: the
// full sweep log is byte-identical no matter how many workers ran it.
func TestBatchBitReproducible(t *testing.T) {
	run := func(workers int) []byte {
		res, err := RunGrid(goldenBase(), goldenAxes(), Options{Workers: workers})
		if err != nil {
			t.Fatalf("RunGrid(workers=%d): %v", workers, err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	serial := run(1)
	for _, workers := range []int{3, 8} {
		if par := run(workers); !bytes.Equal(serial, par) {
			t.Errorf("sweep log differs between Workers=1 and Workers=%d", workers)
		}
	}
}

func TestCoordinateDescentConverges(t *testing.T) {
	axes := []Axis{
		{Param: ParamSupplySetpointC, Values: []float64{18.0, 21.1, 24.0}},
		{Param: ParamStageDownFrac, Values: []float64{0.86, 0.92}},
	}
	res, err := RunCoordinateDescent(goldenBase(), axes, 3, Options{})
	if err != nil {
		t.Fatalf("RunCoordinateDescent: %v", err)
	}
	// The cache must keep revisited line points free: nominal + the
	// round-1 lines (3+2) + at most one refinement line per axis.
	if len(res.Evaluated) > 1+(3+2)+(3+2) {
		t.Errorf("cd evaluated %d points, cache not deduplicating", len(res.Evaluated))
	}
	if !(res.Best.Score <= res.Baseline.Score) {
		t.Errorf("cd best %.6f worse than baseline %.6f", res.Best.Score, res.Baseline.Score)
	}
}

func TestCEMReproducible(t *testing.T) {
	axes := goldenAxes()
	cem := CEMConfig{Population: 6, Elite: 2, Iterations: 2}
	a, err := RunCEM(goldenBase(), axes, cem, Options{Workers: 1})
	if err != nil {
		t.Fatalf("RunCEM: %v", err)
	}
	b, err := RunCEM(goldenBase(), axes, cem, Options{Workers: 4})
	if err != nil {
		t.Fatalf("RunCEM: %v", err)
	}
	if a.Best.Hash != b.Best.Hash || len(a.Evaluated) != len(b.Evaluated) {
		t.Errorf("CEM diverges across worker counts: best %s/%s, %d/%d evals",
			a.Best.Hash, b.Best.Hash, len(a.Evaluated), len(b.Evaluated))
	}
	within(t, "cem best score", a.Best.Score, b.Best.Score, 0)
	if !(a.Best.Score <= a.Baseline.Score) {
		t.Errorf("cem best %.6f worse than baseline %.6f", a.Best.Score, a.Baseline.Score)
	}
}

func TestStudyCatalog(t *testing.T) {
	studies := Catalog()
	if len(studies) < 3 {
		t.Fatalf("catalog has %d studies, want >= 3", len(studies))
	}
	for i, s := range studies {
		if i > 0 && studies[i-1].Name >= s.Name {
			t.Errorf("catalog not sorted at %q", s.Name)
		}
		if err := validateAxes(s.Axes); err != nil {
			t.Errorf("study %q axes invalid: %v", s.Name, err)
		}
		if s.Scenario == "" {
			t.Errorf("study %q names no base scenario", s.Name)
		}
		got, err := StudyByName(s.Name)
		if err != nil || got.Name != s.Name {
			t.Errorf("StudyByName(%q) = %q, %v", s.Name, got.Name, err)
		}
	}
	if _, err := StudyByName("no-such-study"); !errors.Is(err, ErrScenario) {
		t.Errorf("unknown study err = %v, want ErrScenario", err)
	}
}

func TestEvaluateErrors(t *testing.T) {
	base := goldenBase()
	if _, err := Evaluate(base, nil, Options{}); err == nil {
		t.Error("empty scenario list must error")
	}
	bad := []Scenario{{Params: map[Param]float64{"mystery_knob": 1}}}
	if _, err := Evaluate(base, bad, Options{}); !errors.Is(err, ErrScenario) {
		t.Errorf("bad scenario err = %v, want ErrScenario", err)
	}
}
