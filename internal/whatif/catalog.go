package whatif

import (
	"fmt"
	"sort"

	"repro/internal/units"
)

// Study is a catalog entry: a ready-to-run what-if question with its base
// scenario and search axes. The base is referenced by internal/scenario
// catalog name rather than an inlined sim.Config — the scenario catalog is
// the one place run shapes are defined, and whatif sits below it in the
// dependency order, so callers (cmd/optimize) resolve the name to a config
// via scenario.Compile before calling Evaluate.
type Study struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Scenario names the internal/scenario catalog entry supplying the
	// base configuration.
	Scenario string `json:"scenario"`
	Axes     []Axis `json:"axes"`
}

// midJulyOffsetSec places a run in a mid-July afternoon heat wave (the
// wet-bulb peak of the weather model's year). The scenario catalog's
// "summer-heatwave" weather regime is defined as exactly this offset.
const midJulyOffsetSec = (196*24 + 12) * units.SecondsPerHour

// MidJulyOffsetSec exposes the heat-wave placement for the scenario
// catalog, which must reproduce the historical study bases bit-for-bit.
const MidJulyOffsetSec = midJulyOffsetSec

// Catalog returns the named studies, sorted by name. Each base scenario is
// a scaled floor sized so a full grid completes in seconds.
func Catalog() []Study {
	studies := []Study{
		{
			Name: "heatwave-setpoint",
			Description: "Summer heat-wave afternoon: sweep the MTW supply setpoint " +
				"against the staging deadband. Raising the setpoint unloads the trim " +
				"chillers (energy down) but runs the GPUs hotter (violations up); " +
				"the sweep maps the frontier and picks the operating point.",
			Scenario: "heatwave-summer",
			Axes: []Axis{
				{Param: ParamSupplySetpointC, Values: []float64{17.5, 18.5, 19.5, 20.5, 21.1, 22.0, 23.0, 24.0}},
				{Param: ParamStageDownFrac, Values: []float64{0.80, 0.86, 0.92, 0.98}},
				{Param: ParamStageUpFrac, Values: []float64{1.0, 1.08}},
			},
		},
		{
			Name: "winter-economizer",
			Description: "Winter economizer tuning: with the chillers idle, trade " +
				"tower efficiency against the supply setpoint for the lowest PUE.",
			Scenario: "winter-economizer",
			Axes: []Axis{
				{Param: ParamSupplySetpointC, Values: []float64{18.0, 19.5, 21.1, 22.5}},
				{Param: ParamTowerKWPerTon, Values: []float64{0.10, 0.14, 0.18}},
			},
		},
		{
			Name: "cap-placement",
			Description: "Power-capped day: sweep the admission cap against the " +
				"placement policy, trading skipped work against peak power and heat.",
			Scenario: "summer-capday",
			Axes: []Axis{
				{Param: ParamPowerCapMW, Values: []float64{0.10, 0.14, 0.18, 0.25}},
				{Param: ParamPlacement, Values: []float64{0, 1, 2}},
			},
		},
	}
	sort.Slice(studies, func(a, b int) bool { return studies[a].Name < studies[b].Name })
	return studies
}

// StudyByName looks up a catalog study.
func StudyByName(name string) (Study, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	names := ""
	for i, s := range Catalog() {
		if i > 0 {
			names += ", "
		}
		names += s.Name
	}
	return Study{}, fmt.Errorf("%w: unknown study %q (have %s)", ErrScenario, name, names)
}
