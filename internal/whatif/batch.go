package whatif

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options configures a batch evaluation.
type Options struct {
	// Workers bounds the scenario-level parallelism (0 = all cores). The
	// reports are bit-identical for every worker count: each scenario's
	// evaluation is independent and writes only its own slot.
	Workers int
	// Weights scores each report; the zero value selects DefaultWeights.
	Weights Weights
	// IndependentStreams gives every scenario its own derived-seed
	// weather/workload/failure streams instead of the default paired
	// evaluation (all scenarios share the base config's streams, so knob
	// effects are not confounded with stream noise).
	IndependentStreams bool
	// KeepFailures retains failure injection at the base config's rate.
	// Off by default: the objective's failure term then reads 0 and
	// sweeps run faster, matching the power-cap experiment's practice.
	KeepFailures bool
}

func (o Options) weights() Weights {
	if o.Weights == (Weights{}) {
		return DefaultWeights()
	}
	return o.Weights
}

// Evaluate runs every scenario against the base configuration and
// returns one objective report per scenario, in scenario order.
//
// The workload is frozen once from the base seed, so every scenario
// schedules the same submitted job stream (the paired-comparison design
// of the power-cap experiment); the knobs may still change what starts
// and when. Evaluations fan out over a parallel.Pool and are
// bit-reproducible for any worker count.
//
//lint:detroot
func Evaluate(base sim.Config, scns []Scenario, opt Options) ([]Report, error) {
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("whatif: base config: %w", err)
	}
	if len(scns) == 0 {
		return nil, fmt.Errorf("whatif: no scenarios to evaluate")
	}
	if len(base.Workload) == 0 {
		jobs, err := workload.Generate(workload.GenConfig{
			Seed:              base.Seed,
			StartTime:         base.StartTime,
			SpanSec:           base.DurationSec,
			Jobs:              base.Jobs,
			MaxNodes:          minInt(base.Nodes, 4608),
			ProjectsPerDomain: 6,
		})
		if err != nil {
			return nil, fmt.Errorf("whatif: freeze workload: %w", err)
		}
		base.Workload = jobs
	}
	weights := opt.weights()
	reports := make([]Report, len(scns))
	errs := make([]error, len(scns))
	workers := opt.Workers
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	if workers > len(scns) {
		workers = len(scns)
	}
	pool := parallel.NewPool(workers)
	defer pool.Close()
	pool.ForEach(len(scns), func(i int) {
		reports[i], errs[i] = evalOne(base, scns[i], opt, weights)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("whatif: scenario %q: %w", scns[i].Label(), err)
		}
	}
	return reports, nil
}

// evalOne runs a single scenario to its objective report.
func evalOne(base sim.Config, scn Scenario, opt Options, w Weights) (Report, error) {
	cfg, err := scn.Apply(base)
	if err != nil {
		return Report{}, err
	}
	// The batch parallelizes across scenarios; each run stays serial so
	// worker slots map one-to-one onto evaluations.
	cfg.Workers = 1
	seed := Seed(base.Seed, scn)
	if opt.IndependentStreams {
		cfg.Seed = seed
		cfg.Workload = nil // regenerate the job stream from the derived seed
	}
	if !opt.KeepFailures {
		// Suppress failure injection (rate → 0) for sweep throughput.
		cfg.FailureRateScale = 1e-9
	}
	d, res, err := core.CollectRun(cfg)
	if err != nil {
		return Report{}, err
	}
	return Assess(d, res, scn, seed, w)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
