package whatif

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/units"
)

// Report is the objective vector of one scenario evaluation: everything
// the search strategies score, plus the run identity that makes the sweep
// log a reproducible artifact.
type Report struct {
	Scenario Scenario `json:"scenario"`
	Label    string   `json:"label"`
	Hash     string   `json:"hash"` // canonical scenario hash, hex
	Seed     uint64   `json:"seed"` // derived run identity

	// Energy and efficiency.
	MeanPUE        float64 `json:"mean_pue"`
	ITEnergyMWh    float64 `json:"it_energy_mwh"`
	TotalEnergyMWh float64 `json:"total_energy_mwh"`

	// Thermal health: time with any GPU in the top (>=60 °C) band, and
	// the GPU-weighted integral of that occupancy.
	ViolationSec    float64 `json:"violation_sec"`
	ViolationGPUSec float64 `json:"violation_gpu_sec"`

	// Overcooling margin: cooling delivered beyond the load.
	OvercoolingTonH      float64 `json:"overcooling_tonh"`
	OvercoolingEnergyKWh float64 `json:"overcooling_energy_kwh"`

	// Reliability and throughput.
	Failures      int     `json:"failures"`
	JobsCompleted int     `json:"jobs_completed"`
	JobsSkipped   int     `json:"jobs_skipped"`
	Utilization   float64 `json:"utilization"`

	// Score is the weighted scalar objective (lower is better).
	Score float64 `json:"score"`
}

// Weights combines the objective vector into the scalar the searches
// minimize. Each weight is a cost per unit; zero drops the term.
type Weights struct {
	// EnergyMWh prices total facility energy (IT + cooling), per MWh.
	EnergyMWh float64 `json:"energy_mwh"`
	// ViolationHour prices each hour with any GPU in the top thermal band.
	ViolationHour float64 `json:"violation_hour"`
	// OvercoolingTonH prices each ton-hour of excess cooling.
	OvercoolingTonH float64 `json:"overcooling_tonh"`
	// Failure prices each injected GPU XID event.
	Failure float64 `json:"failure"`
	// SkippedJob prices each job the scheduler could never start.
	SkippedJob float64 `json:"skipped_job"`
}

// DefaultWeights balances the terms for the catalog's scaled studies:
// energy is the base currency, a violation-hour costs a day of a
// megawatt-hour's worth, and throughput losses dominate both.
func DefaultWeights() Weights {
	return Weights{
		EnergyMWh:       1,
		ViolationHour:   25,
		OvercoolingTonH: 0.02,
		Failure:         0.5,
		SkippedJob:      5,
	}
}

// Score evaluates the weighted scalar objective (lower is better).
func (w Weights) Score(r *Report) float64 {
	return w.EnergyMWh*r.TotalEnergyMWh +
		w.ViolationHour*r.ViolationSec/units.SecondsPerHour +
		w.OvercoolingTonH*r.OvercoolingTonH +
		w.Failure*float64(r.Failures) +
		w.SkippedJob*float64(r.JobsSkipped)
}

// assessMetrics fills the purely source-derived metric block shared by
// Assess and AssessSource — energy, mean PUE, thermal violations,
// overcooling — and returns the run's end time for job-completion cuts.
func assessMetrics(src source.RunSource, rep *Report) (endTime int64, err error) {
	it, err := src.Series(source.SeriesClusterTruePower)
	if err != nil {
		return 0, err
	}
	pue, err := src.Series(source.SeriesPUE)
	if err != nil {
		return 0, err
	}
	top, err := src.Series(source.GPUBandSeries(core.NumTempBands - 1))
	if err != nil {
		return 0, err
	}
	if it.Len() == 0 || pue.Len() != it.Len() || top.Len() != it.Len() {
		return 0, fmt.Errorf("inconsistent series lengths")
	}
	step := float64(it.Step)
	var itJ, totJ float64
	for i, v := range it.Vals {
		if math.IsNaN(v) {
			continue
		}
		itJ += v * step
		if p := pue.Vals[i]; !math.IsNaN(p) && p >= 1 {
			totJ += v * p * step
		} else {
			totJ += v * step
		}
		if n := top.Vals[i]; !math.IsNaN(n) && n > 0 {
			rep.ViolationSec += step
			rep.ViolationGPUSec += n * step
		}
	}
	rep.ITEnergyMWh = units.Joules(itJ).MWh()
	rep.TotalEnergyMWh = units.Joules(totJ).MWh()
	if itJ > 0 {
		rep.MeanPUE = totJ / itJ
	} else {
		rep.MeanPUE = math.NaN()
	}
	oc, err := core.OvercoolingFromSource(src)
	if err != nil {
		return 0, err
	}
	rep.OvercoolingTonH = oc.ExcessTonHours
	rep.OvercoolingEnergyKWh = oc.ExcessEnergyKWh
	return it.Start + int64(it.Len())*it.Step, nil
}

// Assess reduces one completed run to its objective report through the
// unified data plane: the same FromSource analyses the dashboards and the
// archive tier run, applied to the run's in-memory source. Run-level
// facts the data plane cannot serve (skipped jobs, the scheduler's own
// utilization figure) come from the sim result.
func Assess(d *core.RunData, res *sim.Result, scn Scenario, seed uint64, w Weights) (Report, error) {
	rep := Report{
		Scenario: scn,
		Label:    scn.Label(),
		Hash:     fmt.Sprintf("%016x", scn.Hash()),
		Seed:     seed,
	}
	endTime, err := assessMetrics(d.Source(), &rep)
	if err != nil {
		return rep, fmt.Errorf("whatif: assess: %w", err)
	}
	rep.Failures = len(res.Failures)
	rep.JobsSkipped = res.Skipped
	rep.Utilization = res.Utilization
	for i := range res.Allocations {
		if res.Allocations[i].EndTime <= endTime {
			rep.JobsCompleted++
		}
	}
	rep.Score = w.Score(&rep)
	return rep, nil
}

// AssessSource reduces any RunSource — a live run's memory source or a
// re-opened archive — to the objective report using only what the source
// serves: failures from the failure log, completed jobs and utilization
// from the job records. JobsSkipped is not observable from a source
// (skipped jobs never produce records) and reads 0. Because every input is
// FromSource, the report is byte-identical whether computed before
// archiving or after re-opening the archive (the memory/archive parity
// invariant) — the scenario subsystem's run → archive → report path
// depends on exactly this.
func AssessSource(src source.RunSource, w Weights) (Report, error) {
	var rep Report
	endTime, err := assessMetrics(src, &rep)
	if err != nil {
		return rep, fmt.Errorf("whatif: assess source: %w", err)
	}
	meta, err := src.Meta()
	if err != nil {
		return rep, fmt.Errorf("whatif: assess source: %w", err)
	}
	evs, err := src.Failures()
	if err != nil {
		return rep, fmt.Errorf("whatif: assess source: %w", err)
	}
	rep.Failures = len(evs)
	recs, err := src.JobRecords()
	if err != nil {
		return rep, fmt.Errorf("whatif: assess source: %w", err)
	}
	var nodeSec float64
	for i := range recs {
		r := &recs[i]
		if r.EndTime <= endTime {
			rep.JobsCompleted++
		}
		b, e := r.BeginTime, r.EndTime
		if b < meta.StartTime {
			b = meta.StartTime
		}
		if e > endTime {
			e = endTime
		}
		if e > b {
			nodeSec += float64(r.Nodes) * float64(e-b)
		}
	}
	if span := float64(meta.SpanSec()) * float64(meta.Nodes); span > 0 {
		rep.Utilization = nodeSec / span
	}
	rep.Score = w.Score(&rep)
	return rep, nil
}
