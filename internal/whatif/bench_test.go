package whatif

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkWhatifBatch measures scenario-evaluation throughput on the
// small floor (64 nodes, one simulated hour per run): a 4-point setpoint
// grid evaluated per iteration. The runs/sec metric is the number the
// optimize CLI's wall-clock budget is planned against; `make bench-whatif`
// records it in BENCH_whatif.json.
func BenchmarkWhatifBatch(b *testing.B) {
	base := sim.Scaled(64, 3600)
	base.StartTime += midJulyOffsetSec
	scns := Grid([]Axis{
		{Param: ParamSupplySetpointC, Values: []float64{18.0, 20.0, 22.0, 24.0}},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(base, scns, Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runs := float64(b.N * len(scns))
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(runs/sec, "runs/sec")
	}
}
