// Command benchjson records Go benchmark results as JSON so performance
// baselines can be tracked in the repository. It reads `go test -bench
// -benchmem` output on stdin, echoes it through unchanged, and merges the
// parsed results into a JSON file under a run label:
//
//	go test -run '^$' -bench 'BenchmarkSim' -benchmem . |
//	    go run ./cmd/benchjson -out BENCH_sim.json -label post-optimization
//
// The output file maps label -> benchmark name -> metrics. Existing labels
// other than the one being written are preserved, so a "pre" baseline and
// any number of "post" measurements can live side by side. When a
// benchmark appears multiple times on stdin (-count > 1), the run with the
// lowest ns/op is kept — the minimum is the measurement least disturbed by
// competing load.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark measurement.
type Entry struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"` // e.g. windows/run
}

// parseBench parses one `go test -bench` result line, e.g.
//
//	BenchmarkSimulateDay-4   30   14349991 ns/op   9692262 B/op   1185 allocs/op
//
// returning the benchmark name (CPU-count suffix stripped) and its entry.
func parseBench(line string) (string, Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Entry{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Entry{}, false
	}
	e := Entry{Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Entry{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
			seen = true
		case "B/op":
			e.BytesPerOp = v
		case "allocs/op":
			e.AllocsPerOp = v
		default:
			if e.Extra == nil {
				e.Extra = map[string]float64{}
			}
			e.Extra[unit] = v
		}
	}
	return name, e, seen
}

// collect parses every benchmark line from r, echoing all input to echo,
// and keeps the lowest-ns/op entry per benchmark.
func collect(r io.Reader, echo io.Writer) (map[string]Entry, error) {
	out := map[string]Entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		name, e, ok := parseBench(line)
		if !ok {
			continue
		}
		if prev, dup := out[name]; !dup || e.NsPerOp < prev.NsPerOp {
			out[name] = e
		}
	}
	return out, sc.Err()
}

// mergeFile folds entries into the JSON file at path under label, creating
// the file if needed and preserving other labels.
func mergeFile(path, label string, entries map[string]Entry) error {
	doc := map[string]map[string]Entry{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("benchjson: parsing existing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if doc[label] == nil {
		doc[label] = map[string]Entry{}
	}
	for name, e := range entries {
		doc[label][name] = e
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "BENCH_sim.json", "JSON file to merge results into")
	label := flag.String("label", "current", "label to record this run under")
	flag.Parse()
	entries, err := collect(os.Stdin, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	if len(entries) == 0 {
		log.Fatal("no benchmark results found on stdin")
	}
	if err := mergeFile(*out, *label, entries); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: recorded %d benchmark(s) under %q in %s\n",
		len(entries), *label, *out)
}
