package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkSimulateDay 	      30	  14349991 ns/op	 9692262 B/op	    1185 allocs/op
BenchmarkSimulateDay 	      30	  13942398 ns/op	 9692302 B/op	    1185 allocs/op
BenchmarkSimSteadyState-4 	       3	  33285240 ns/op	       360.0 windows/run	 7513408 B/op	      69 allocs/op
PASS
ok  	repro	1.528s
`

func TestParseBench(t *testing.T) {
	name, e, ok := parseBench("BenchmarkSimulateDay \t 30\t  14349991 ns/op\t 9692262 B/op\t 1185 allocs/op")
	if !ok || name != "BenchmarkSimulateDay" {
		t.Fatalf("parse failed: ok=%v name=%q", ok, name)
	}
	if e.Iterations != 30 || e.NsPerOp != 14349991 || e.BytesPerOp != 9692262 || e.AllocsPerOp != 1185 {
		t.Fatalf("bad entry: %+v", e)
	}
	if _, _, ok := parseBench("ok  \trepro\t1.528s"); ok {
		t.Fatal("non-benchmark line parsed")
	}
	if _, _, ok := parseBench("BenchmarkBroken 12"); ok {
		t.Fatal("line without ns/op parsed")
	}
}

func TestParseBenchStripsCPUSuffix(t *testing.T) {
	name, e, ok := parseBench("BenchmarkSimSteadyState-4 \t 3\t 33285240 ns/op\t 360.0 windows/run\t 7513408 B/op\t 69 allocs/op")
	if !ok || name != "BenchmarkSimSteadyState" {
		t.Fatalf("ok=%v name=%q", ok, name)
	}
	if e.Extra["windows/run"] != 360 {
		t.Fatalf("extra metric lost: %+v", e.Extra)
	}
}

func TestCollectKeepsFastestAndEchoes(t *testing.T) {
	var echo strings.Builder
	entries, err := collect(strings.NewReader(sample), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if echo.String() != sample {
		t.Error("input was not echoed through verbatim")
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2: %v", len(entries), entries)
	}
	if e := entries["BenchmarkSimulateDay"]; e.NsPerOp != 13942398 {
		t.Fatalf("kept %v ns/op, want the faster 13942398", e.NsPerOp)
	}
}

func TestMergeFilePreservesOtherLabels(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := mergeFile(path, "pre", map[string]Entry{
		"BenchmarkSimulateDay": {Iterations: 30, NsPerOp: 29787117, BytesPerOp: 20437111, AllocsPerOp: 14901},
	}); err != nil {
		t.Fatal(err)
	}
	if err := mergeFile(path, "post", map[string]Entry{
		"BenchmarkSimulateDay": {Iterations: 30, NsPerOp: 13942398, BytesPerOp: 9692302, AllocsPerOp: 1185},
	}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]map[string]Entry
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["pre"]["BenchmarkSimulateDay"].NsPerOp != 29787117 {
		t.Fatalf("pre label lost: %+v", doc)
	}
	if doc["post"]["BenchmarkSimulateDay"].AllocsPerOp != 1185 {
		t.Fatalf("post label wrong: %+v", doc)
	}
}

func TestMergeFileRejectsCorruptJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := mergeFile(path, "x", map[string]Entry{"B": {NsPerOp: 1}}); err == nil {
		t.Fatal("corrupt existing file silently overwritten")
	}
}

func TestWriteReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	for label, ns := range map[string]float64{"pre": 200, "post": 100} {
		if err := mergeFile(path, label, map[string]Entry{
			"BenchmarkX": {Iterations: 10, NsPerOp: ns, Extra: map[string]float64{"windows/run": 360}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	var buf strings.Builder
	if err := writeReport(&buf, []string{path}); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	// Slowest label first, speedup measured against it, extras rendered.
	pre := strings.Index(got, "| BenchmarkX | pre | 200 |")
	post := strings.Index(got, "| BenchmarkX | post | 100 |")
	if pre < 0 || post < 0 || post < pre {
		t.Fatalf("rows missing or misordered:\n%s", got)
	}
	if !strings.Contains(got, "2.00×") || !strings.Contains(got, "360 windows/run") {
		t.Fatalf("speedup or extras missing:\n%s", got)
	}
}

func TestRunReportNoFiles(t *testing.T) {
	if err := runReport("-", []string{filepath.Join(t.TempDir(), "nope.json")}); err == nil {
		t.Fatal("missing baseline file accepted")
	}
}
