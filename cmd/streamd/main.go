// Command streamd is the live analysis service of the reproduction: it
// terminates the out-of-band telemetry transport (the §2 collection path)
// in the streaming-analysis plane and serves the paper's statistics over
// HTTP while the run is still in flight — the online counterpart of
// queryd, which serves the same analyses over the finished archive.
//
// Samples arrive over the length-prefixed TCP transport on -ingest, flow
// through the sharded stream.Pipeline (windowed coarsening, fleet/cabinet/
// MSB rollups, edge detection, thermal bands, early warning), and are
// queryable at:
//
//	GET /api/v1/live/rollup        — fleet/cabinet/MSB power windows
//	GET /api/v1/live/edges         — detected power edges
//	GET /api/v1/live/bands         — thermal-band histogram + occupancy
//	GET /api/v1/live/earlywarning  — precursor→outcome lift statistics
//	GET /api/v1/live/health        — ingest counters, watermark, degradation
//	GET /healthz                   — liveness
//
// With -sim-minutes M the service feeds itself: it runs the simulation
// twin for M simulated minutes and exports every node's power and GPU
// core temperatures through real TCP exporters into its own ingest port,
// so the full transport → pipeline → API path is exercised end to end.
//
// Usage:
//
//	streamd [-addr :8090] [-ingest :9090] [-nodes N] [-sim-minutes M]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/failures"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/units"
)

// options is the parsed flag set.
type options struct {
	addr          string
	ingest        string
	nodes         int
	stepSec       int64
	lateness      int64
	queue         int
	timeout       time.Duration
	maxConcurrent int
	simMinutes    float64
	quiet         bool
}

// parseFlags parses args (without the program name).
func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("streamd", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8090", "HTTP listen address")
	fs.StringVar(&o.ingest, "ingest", "127.0.0.1:9090", "telemetry ingest (TCP) listen address")
	fs.IntVar(&o.nodes, "nodes", 72, "system size in nodes")
	fs.Int64Var(&o.stepSec, "step", units.CoarsenWindowSec, "coarsening window in seconds")
	fs.Int64Var(&o.lateness, "lateness", int64(units.MaxTimestampDelaySec),
		"out-of-order tolerance in seconds; samples further behind are dropped")
	fs.IntVar(&o.queue, "queue", 256, "per-shard ingest queue depth in batches (full queues drop, never block)")
	fs.DurationVar(&o.timeout, "timeout", 10*time.Second, "per-request deadline")
	fs.IntVar(&o.maxConcurrent, "max-concurrent", 32, "concurrent query limit (excess sheds with 503)")
	fs.Float64Var(&o.simMinutes, "sim-minutes", 0,
		"feed the service from an embedded simulated run of this many simulated minutes (0 = external feed only)")
	fs.BoolVar(&o.quiet, "q", false, "suppress startup output")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.nodes <= 0 {
		return o, errors.New("streamd: -nodes must be positive")
	}
	return o, nil
}

// service wires the transport, the pipeline and the HTTP tier together;
// the caller serves and shuts down.
type service struct {
	pipe *stream.Pipeline
	tsrv *telemetry.Server
	srv  *http.Server
	ln   net.Listener
	// feed reports the embedded simulated feed's result; nil without
	// -sim-minutes.
	feed chan error
}

// newService builds the pipeline, binds the ingest and HTTP listeners, and
// (with o.simMinutes > 0) starts the embedded feed.
func newService(o options, out io.Writer) (*service, error) {
	startTime := int64(0)
	var simCfg sim.Config
	if o.simMinutes > 0 {
		simCfg = repro.ScaledConfig(o.nodes, time.Duration(o.simMinutes*float64(time.Minute)))
		startTime = simCfg.StartTime
	}
	pipe, err := stream.NewPipeline(stream.Config{
		Nodes:       o.nodes,
		StartTime:   startTime,
		StepSec:     o.stepSec,
		LatenessSec: o.lateness,
		QueueDepth:  o.queue,
	})
	if err != nil {
		return nil, err
	}
	tsrv, err := telemetry.NewServer(o.ingest, pipe.Ingest)
	if err != nil {
		pipe.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		tsrv.Close()
		pipe.Close()
		return nil, err
	}
	handler := stream.NewHandler(pipe, stream.ServeConfig{
		Timeout:       o.timeout,
		MaxConcurrent: o.maxConcurrent,
	})
	s := &service{
		pipe: pipe,
		tsrv: tsrv,
		ln:   ln,
		srv: &http.Server{
			Handler:           handler,
			ReadHeaderTimeout: 5 * time.Second,
			// The per-request timeout lives in the handler; WriteTimeout
			// backs it up with headroom for slow readers.
			WriteTimeout: o.timeout + 30*time.Second,
			IdleTimeout:  2 * time.Minute,
		},
	}
	if o.simMinutes > 0 {
		s.feed = make(chan error, 1)
		go func() { s.feed <- runFeed(simCfg, pipe, tsrv.Addr(), o.quiet, out) }()
	}
	return s, nil
}

// runFeed runs the simulation twin and exports every observed node's input
// power and GPU core temperatures through per-shard TCP exporters into the
// service's own ingest port; failure events go straight to the pipeline
// (the paper's failure feed is a log, not a telemetry channel).
func runFeed(cfg sim.Config, pipe *stream.Pipeline, addr string, quiet bool, out io.Writer) error {
	s, err := sim.New(cfg)
	if err != nil {
		return err
	}
	shards := (cfg.Nodes + units.FanInRatio - 1) / units.FanInRatio
	exporters := make([]*telemetry.Exporter, shards)
	for i := range exporters {
		if exporters[i], err = telemetry.Dial(addr); err != nil {
			return err
		}
	}
	var pushErr error
	res, err := s.Run(sim.ObserverFunc(func(snap *sim.Snapshot) {
		if pushErr != nil {
			return
		}
		for i := range snap.NodeStat {
			if snap.NodeStat[i].Count == 0 {
				continue // node unobserved this window (telemetry loss)
			}
			exp := exporters[i/units.FanInRatio%shards]
			if perr := exp.Push(telemetry.Sample{
				Node: topology.NodeID(i), Metric: telemetry.MetricInputPower,
				T: snap.T, Value: snap.NodeStat[i].Mean,
			}); perr != nil {
				pushErr = perr
				return
			}
			for g := 0; g < units.GPUsPerNode; g++ {
				v := snap.GPUCoreTemp[i][g]
				if math.IsNaN(v) {
					continue
				}
				if perr := exp.Push(telemetry.Sample{
					Node: topology.NodeID(i), Metric: telemetry.GPUCoreTempMetric(topology.GPUSlot(g)),
					T: snap.T, Value: v,
				}); perr != nil {
					pushErr = perr
					return
				}
			}
		}
		if len(snap.Failures) > 0 {
			pipe.IngestEvents(append([]failures.Event(nil), snap.Failures...))
		}
	}))
	if err != nil {
		return err
	}
	if pushErr != nil {
		return pushErr
	}
	var sent int64
	for _, exp := range exporters {
		if cerr := exp.Close(); cerr != nil {
			return cerr
		}
		sent += exp.Sent()
	}
	if !quiet {
		fmt.Fprintf(out, "feed complete: %d simulated windows, %d samples over %d shard connections, %d failure events\n",
			res.Steps, sent, shards, len(res.Failures))
	}
	return nil
}

// shutdown stops the service back to front: close the transport so no new
// batches arrive, flush the pipeline through the operators, then drain
// in-flight HTTP requests.
func (s *service) shutdown(ctx context.Context) error {
	terr := s.tsrv.Close()
	s.pipe.Close()
	herr := s.srv.Shutdown(ctx)
	return errors.Join(terr, herr)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("streamd: ")
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	s, err := newService(o, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	if !o.quiet {
		fmt.Printf("ingesting telemetry on tcp://%s\n", s.tsrv.Addr())
		fmt.Printf("serving live analyses on http://%s\n", s.ln.Addr())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- s.srv.Serve(s.ln) }()
	if s.feed != nil {
		go func() {
			if ferr := <-s.feed; ferr != nil {
				log.Printf("embedded feed: %v", ferr)
			}
		}()
	}
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.shutdown(shutdownCtx); err != nil {
		log.Fatal(err)
	}
}
