package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.nodes != 72 || o.stepSec != 10 || o.lateness != 5 || o.queue != 256 {
		t.Errorf("defaults = %+v", o)
	}
	if _, err := parseFlags([]string{"-nodes", "0"}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
	}
	return out
}

// TestServiceEndToEnd runs the whole streamd path on loopback: embedded
// simulated feed → TCP transport → stream pipeline → live HTTP API →
// graceful shutdown. Together with `make stream-check` this is the
// acceptance run for the live plane.
func TestServiceEndToEnd(t *testing.T) {
	o := options{
		addr:          "127.0.0.1:0",
		ingest:        "127.0.0.1:0",
		nodes:         18,
		stepSec:       10,
		lateness:      5,
		queue:         1024,
		timeout:       10 * time.Second,
		maxConcurrent: 8,
		simMinutes:    10,
		quiet:         true,
	}
	s, err := newService(o, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	go s.srv.Serve(s.ln)

	if err := <-s.feed; err != nil {
		t.Fatalf("embedded feed: %v", err)
	}
	base := "http://" + s.ln.Addr().String()

	// The feed has returned but delivery is asynchronous (TCP frames may
	// still be draining into the pipeline); poll until frames appear.
	deadline := time.Now().Add(10 * time.Second)
	var health map[string]any
	for {
		health = getJSON(t, base+"/api/v1/live/health")
		// 10 simulated minutes = 60 windows; all but the few behind the
		// lateness bound must be finalized once the transport drains.
		if health["frames"].(float64) >= 50 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline never caught up: health %v", health)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if health["status"] != "ok" {
		t.Errorf("health = %v", health)
	}
	if health["received"].(float64) == 0 || health["watermark_t"] == nil {
		t.Errorf("health counters = %v", health)
	}

	rollup := getJSON(t, base+"/api/v1/live/rollup")
	if rollup["windows_total"].(float64) < 50 {
		t.Errorf("rollup windows = %v", rollup["windows_total"])
	}
	points := rollup["points"].([]any)
	if len(points) == 0 {
		t.Fatal("no fleet points")
	}
	last := points[len(points)-1].(map[string]any)
	if v, ok := last["v"].(float64); !ok || v <= 0 {
		t.Errorf("latest fleet power = %v, want positive", last["v"])
	}

	bands := getJSON(t, base+"/api/v1/live/bands")
	if bands["total_gpus"].(float64) != float64(18*6) {
		t.Errorf("total_gpus = %v", bands["total_gpus"])
	}

	ew := getJSON(t, base+"/api/v1/live/earlywarning")
	if len(ew["pairs"].([]any)) != 3 {
		t.Errorf("earlywarning pairs = %v", ew["pairs"])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The pipeline is flushed and still snapshotable after shutdown.
	snap := s.pipe.Snapshot()
	if snap.Ingest.Frames < 60 {
		t.Errorf("frames after flush = %d, want 60", snap.Ingest.Frames)
	}
}
