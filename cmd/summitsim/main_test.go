package main

import (
	"strings"
	"testing"
)

func TestValidateSize(t *testing.T) {
	cases := []struct {
		nodes int
		days  float64
		want  string // substring of the error; "" means accept
	}{
		{256, 1, ""},
		{1, 0.01, ""},
		{0, 1, "-nodes must be positive"},
		{-4, 1, "-nodes must be positive"},
		{256, 0, "-days must be positive"},
		{256, -0.5, "-days must be positive"},
	}
	for _, c := range cases {
		err := validateSize(c.nodes, c.days)
		if c.want == "" {
			if err != nil {
				t.Errorf("validateSize(%d, %g) = %v, want nil", c.nodes, c.days, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("validateSize(%d, %g) = %v, want error containing %q",
				c.nodes, c.days, err, c.want)
		}
	}
}
