// Command summitsim runs the Summit digital twin for a configurable span
// and archives the resulting telemetry, job and failure datasets in the
// daily-partitioned columnar format (the reproduction's equivalent of the
// paper's 8.5 TB/year archive, at configurable scale).
//
// With -clusters N (N >= 2) it simulates a heterogeneous fleet instead: N
// independently-seeded clusters cycling through the -sites presets, archived
// as one fleet root (out/<cluster>/ per member plus a fleet.json manifest)
// that queryd and analyze consume directly.
//
// Usage:
//
//	summitsim -out /path/to/archive [-nodes N] [-days D] [-seed S]
//	summitsim -out /path/to/archive -scenario heatwave-summer
//	summitsim -out /path/to/fleet -clusters 2 [-sites summit,frontier]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/store"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("summitsim: ")
	scenarioRef := flag.String("scenario", "",
		"run a declarative scenario (catalog name or spec file) instead of building the config from flags")
	nodes := flag.Int("nodes", 256, "system size in nodes (per cluster)")
	days := flag.Float64("days", 1, "simulated span in days")
	seed := flag.Uint64("seed", 2020, "simulation seed (fleet members derive per-cluster seeds)")
	clusters := flag.Int("clusters", 1, "number of clusters; >= 2 archives a fleet root with a manifest")
	sites := flag.String("sites", "summit", "comma-separated site presets cycled across fleet members")
	out := flag.String("out", "", "archive directory (required)")
	setpoint := flag.Float64("setpoint", 0, "MTW supply setpoint override in °C (0 = model default)")
	placement := flag.String("placement", "", "scheduler placement policy: contiguous|packed|scatter")
	capMW := flag.Float64("powercap-mw", 0, "cluster power cap in MW (0 = uncapped)")
	nodeData := flag.Bool("nodedata", false, "also archive per-node window statistics (Dataset 0; large)")
	jobSeries := flag.Bool("jobseries", false, "also archive per-job time series (Datasets 3/4/10/11)")
	quiet := flag.Bool("q", false, "suppress progress output")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *scenarioRef != "" {
		// A scenario is a complete run description: every flag that would
		// also shape the config conflicts rather than silently losing.
		var conflicts []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "nodes", "days", "seed", "setpoint", "placement", "powercap-mw", "clusters", "sites":
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			log.Fatalf("-scenario describes the full run config; drop %s", strings.Join(conflicts, ", "))
		}
	}
	if err := validateSize(*nodes, *days); err != nil {
		log.Fatal(err)
	}
	if *clusters < 1 {
		log.Fatalf("-clusters must be >= 1, got %d", *clusters)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.Start(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}()
	}
	var cfg repro.Config
	if *scenarioRef != "" {
		r, err := scenario.Resolve(*scenarioRef)
		if err != nil {
			log.Fatal(err)
		}
		cfg = r.Config
		if !*quiet {
			fmt.Printf("scenario %s (hash %s, run seed %d)\n", r.Spec.Name, r.Identity(), r.Seed)
		}
	} else {
		cfg = repro.ScaledConfig(*nodes, time.Duration(*days*24*float64(time.Hour)))
		cfg.Seed = *seed
		if *capMW < 0 {
			log.Fatalf("-powercap-mw must be >= 0, got %g", *capMW)
		}
		cfg.Plant.SupplySetpointC = *setpoint
		cfg.Placement = *placement
		cfg.PowerCap = units.Watts(*capMW * units.WattsPerMW)
		// The knob surface shares sim.Config's validation: a bad setpoint,
		// placement name or cap fails here with the same wrapped errors the
		// what-if plane reports.
		if err := cfg.Validate(); err != nil {
			log.Fatal(err)
		}
	}
	if *clusters >= 2 {
		if err := runFleet(cfg, *clusters, *sites, *out, *nodeData, *jobSeries, *quiet); err != nil {
			log.Fatal(err)
		}
		return
	}
	start := time.Now() //lint:allow determinism wall-clock timing for the progress log only
	var data *repro.RunData
	var res *repro.Result
	var err error
	if *nodeData {
		s, nerr := sim.New(cfg)
		if nerr != nil {
			log.Fatal(nerr)
		}
		if err := cfg.Validate(); err != nil {
			log.Fatal(err)
		}
		col := core.NewCollector(s, cfg)
		nw, nerr := core.NewNodeDatasetWriter(*out, cfg.Nodes, cfg.Site)
		if nerr != nil {
			log.Fatal(nerr)
		}
		res, err = s.Run(col, nw)
		if err == nil {
			err = nw.Close()
		}
		if err == nil {
			col.SetFailures(res.Failures)
			data = col.Data()
		}
	} else {
		data, res, err = repro.Simulate(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		fmt.Printf("simulated %d windows on %d nodes: %d jobs, %d failures, utilization %.1f%% (%.1fs)\n",
			res.Steps, cfg.Nodes, len(res.Allocations), len(res.Failures),
			res.Utilization*100, time.Since(start).Seconds()) //lint:allow determinism wall-clock timing for the progress log only
	}
	if err := archiveRun(*out, "", data, *nodeData, *jobSeries, *quiet); err != nil {
		log.Fatal(err)
	}
}

// runFleet simulates n independently-seeded clusters sharing the base
// config's knobs (size, span, setpoint, placement, cap) and archives them
// as a fleet root: out/<cluster>/ per member plus fleet.json.
func runFleet(base repro.Config, n int, sites, out string, nodeData, jobSeries, quiet bool) error {
	siteList := strings.Split(sites, ",")
	var manifest source.FleetManifest
	cfgs := make([]repro.Config, n)
	names := make([]string, n)
	for i := range cfgs {
		site := strings.TrimSpace(siteList[i%len(siteList)])
		if site == "" {
			return fmt.Errorf("empty site name in -sites %q", sites)
		}
		name := fmt.Sprintf("%s-%d", site, i)
		cfg := base
		cfg.Seed = sim.DeriveSeed(base.Seed, i)
		cfg.Cluster = name
		cfg.Site = site
		cfgs[i] = cfg
		names[i] = name
		manifest.Clusters = append(manifest.Clusters, source.FleetEntry{
			Name: name, Site: site, Nodes: cfg.Nodes, Dir: name,
		})
	}
	var dirFor func(i int) string
	if nodeData {
		dirFor = func(i int) string { return filepath.Join(out, names[i]) }
	}
	start := time.Now() //lint:allow determinism wall-clock timing for the progress log only
	runs, err := core.CollectFleet(cfgs, 0, dirFor)
	if err != nil {
		return err
	}
	for i, run := range runs {
		if !quiet {
			fmt.Printf("%-12s simulated %d windows on %d nodes: %d jobs, %d failures, utilization %.1f%%\n",
				names[i], run.Result.Steps, cfgs[i].Nodes, len(run.Result.Allocations),
				len(run.Result.Failures), run.Result.Utilization*100)
		}
		if err := archiveRun(filepath.Join(out, names[i]), names[i], run.Data, nodeData, jobSeries, quiet); err != nil {
			return err
		}
	}
	if err := source.WriteFleetManifest(out, manifest); err != nil {
		return err
	}
	if !quiet {
		fmt.Printf("fleet of %d cluster(s) archived in %s (%.1fs)\n", n, out, time.Since(start).Seconds()) //lint:allow determinism wall-clock timing for the progress log only
	}
	return nil
}

// archiveRun writes one run's datasets, scheduler CSV logs and per-dataset
// footprint report into dir. prefix labels report lines in fleet mode.
func archiveRun(dir, prefix string, data *repro.RunData, nodeData, jobSeries, quiet bool) error {
	if err := core.WriteDatasets(dir, data); err != nil {
		return err
	}
	if jobSeries {
		if err := core.WriteJobSeriesDataset(dir, data); err != nil {
			return err
		}
	}
	// Job scheduler logs (Datasets C and D) as CSV for external tooling.
	if err := writeCSV(filepath.Join(dir, "allocations.csv"), func(w io.Writer) error {
		return core.WriteAllocationCSV(w, data)
	}); err != nil {
		return err
	}
	if err := writeCSV(filepath.Join(dir, "allocations-per-node.csv"), func(w io.Writer) error {
		return core.WritePerNodeCSV(w, data)
	}); err != nil {
		return err
	}
	// Report archive footprint per dataset (the paper tracks this
	// closely: compression made the full-scale archive practical).
	names := []string{core.DatasetClusterPower, core.DatasetJobRecords, core.DatasetFailures}
	if nodeData {
		names = append(names, core.DatasetNodePower)
	}
	if jobSeries {
		names = append(names, core.DatasetJobSeries)
	}
	for _, name := range names {
		ds, err := store.NewDataset(dir, name)
		if err != nil {
			return err
		}
		size, err := ds.SizeOnDisk()
		if err != nil {
			return err
		}
		days, _ := ds.Days()
		if quiet {
			continue
		}
		if prefix != "" {
			fmt.Printf("%-12s dataset %-14s %3d partition(s) %8.1f KiB\n",
				prefix, name, len(days), float64(size)/1024)
		} else {
			fmt.Printf("dataset %-14s %3d partition(s) %8.1f KiB\n",
				name, len(days), float64(size)/1024)
		}
	}
	return nil
}

// validateSize rejects nonsense run dimensions up front: ScaledConfig
// would silently clamp a non-positive span to 600 s, archiving a run the
// caller never asked for.
func validateSize(nodes int, days float64) error {
	if nodes <= 0 {
		return fmt.Errorf("-nodes must be positive, got %d", nodes)
	}
	if days <= 0 {
		return fmt.Errorf("-days must be positive, got %g", days)
	}
	return nil
}

// writeCSV creates path and streams fn's output into it.
func writeCSV(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
