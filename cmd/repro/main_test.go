package main

import (
	"strings"
	"testing"
)

// The whole-paper harness must run end to end at tiny scale and emit
// every experiment header.
func TestRunEmitsAllExperiments(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 54, 1.0, 7, 14, "", ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, id := range []string{
		"table-3", "dataset-c", "figure-4", "figure-5", "figure-6",
		"figure-7", "figure-8", "figure-9", "figure-10", "figure-11",
		"figure-12", "section-2-bands", "section-5-overcooling",
		"table-4", "figure-13", "figure-14", "figure-15", "figure-16",
		"figure-17", "section-9", "section-6-generations",
	} {
		if !strings.Contains(out, "== "+id+" ") {
			t.Errorf("experiment %q missing from harness output", id)
		}
	}
	if strings.Contains(out, "!! experiment failed") {
		t.Errorf("some experiment failed:\n%s", out)
	}
}

func TestRunArchivesData(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run(&b, 36, 0.5, 3, 14, dir, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "datasets archived") {
		t.Error("archive confirmation missing")
	}
	if !strings.Contains(b.String(), "figure data files exported") {
		t.Error("figure export confirmation missing")
	}
}
