// Command repro regenerates every table and figure of the paper's
// evaluation from a scaled simulation of the Summit data center, printing
// one report per experiment with the paper's full-scale reference values
// alongside the measured results.
//
// Usage:
//
//	repro [-nodes N] [-hours H] [-seed S] [-out report.txt] [-data dir]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("repro: ")
	nodes := flag.Int("nodes", 256, "system size in nodes")
	hours := flag.Float64("hours", 12, "simulated span in hours")
	seed := flag.Uint64("seed", 2020, "simulation seed")
	startDay := flag.Int("start", 14, "start day-of-year within 2020 (14 = mid-January, 196 = mid-July)")
	out := flag.String("out", "", "write the report to this file (default stdout)")
	dataDir := flag.String("data", "", "also archive the run's datasets into this directory")
	figDir := flag.String("figdir", "", "also export plot-ready CSV data per figure into this directory")
	year := flag.Bool("year", false, "additionally run the sampled-year seasonal survey (12 parallel monthly sims)")
	powercap := flag.Bool("powercap", false, "additionally run the power-aware scheduling what-if")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := run(w, *nodes, *hours, *seed, *startDay, *dataDir, *figDir); err != nil {
		log.Fatal(err)
	}
	if *year {
		rep, err := repro.ReportYearSurvey(*nodes, *seed, 3*time.Hour, 60)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(w, rep.String())
	}
	if *powercap {
		cfg := repro.ScaledConfig(*nodes, time.Duration(*hours*float64(time.Hour)))
		cfg.Seed = *seed
		rep, err := repro.ReportPowerCap(cfg, []float64{0.9, 0.8, 0.7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(w, rep.String())
	}
}

func run(w io.Writer, nodes int, hours float64, seed uint64, startDay int, dataDir, figDir string) error {
	cfg := repro.ScaledConfig(nodes, time.Duration(hours*float64(time.Hour)))
	cfg.Seed = seed
	cfg.StartTime = 1_577_836_800 + int64(startDay)*86400
	fmt.Fprintf(w, "Summit power/energy/thermal reproduction (SC '21)\n")
	fmt.Fprintf(w, "system: %d nodes, span %.1f h, seed %d, step %d s\n\n",
		cfg.Nodes, hours, cfg.Seed, cfg.StepSec)

	start := time.Now() //lint:allow determinism wall-clock timing for the progress log only
	data, vc, res, err := repro.SimulateWithVariability(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "simulated %d windows, %d jobs placed, %d failures injected, utilization %.1f%% (%.1fs wall)\n\n",
		res.Steps, len(res.Allocations), len(res.Failures),
		res.Utilization*100, time.Since(start).Seconds()) //lint:allow determinism wall-clock timing for the progress log only

	if dataDir != "" {
		if err := core.WriteDatasets(dataDir, data); err != nil {
			return fmt.Errorf("archive datasets: %w", err)
		}
		fmt.Fprintf(w, "datasets archived to %s\n\n", dataDir)
	}
	if figDir != "" {
		files, err := repro.WriteFigureData(figDir, data, vc)
		if err != nil {
			return fmt.Errorf("export figure data: %w", err)
		}
		fmt.Fprintf(w, "%d figure data files exported to %s\n\n", len(files), figDir)
	}

	reports := []func() (repro.Report, error){
		func() (repro.Report, error) { return repro.ReportTable3(), nil },
		func() (repro.Report, error) { return repro.ReportScheduling(data), nil },
		func() (repro.Report, error) { return repro.ReportFigure4(data) },
		func() (repro.Report, error) { return repro.ReportFigure5(data) },
		func() (repro.Report, error) { return repro.ReportFigure6(data) },
		func() (repro.Report, error) { return repro.ReportFigure7(data) },
		func() (repro.Report, error) { return repro.ReportFigure8(data) },
		func() (repro.Report, error) { return repro.ReportFigure9(data) },
		func() (repro.Report, error) { return repro.ReportFigure10(data), nil },
		func() (repro.Report, error) { return repro.ReportFigure11(data), nil },
		func() (repro.Report, error) { return repro.ReportFigure12(data), nil },
		func() (repro.Report, error) { return repro.ReportThermalBands(data) },
		func() (repro.Report, error) { return repro.ReportOvercooling(data) },
		func() (repro.Report, error) { return repro.ReportTable4(data), nil },
		func() (repro.Report, error) { return repro.ReportFigure13(data) },
		func() (repro.Report, error) { return repro.ReportFigure14(data), nil },
		func() (repro.Report, error) { return repro.ReportFigure15(data), nil },
		func() (repro.Report, error) { return repro.ReportFigure16(data), nil },
		func() (repro.Report, error) { return repro.ReportFigure17(vc, data) },
		func() (repro.Report, error) { return repro.ReportFingerprints(data) },
		func() (repro.Report, error) { return repro.ReportGenerations(seed) },
	}
	for _, fn := range reports {
		rep, err := fn()
		if err != nil {
			fmt.Fprintf(w, "!! experiment failed: %v\n\n", err)
			continue
		}
		fmt.Fprintln(w, rep.String())
	}
	return nil
}
