// Command queryd serves a telemetry archive (as written by summitsim or
// cmd/repro -data) over HTTP: the online query tier of the reproduction,
// standing in for the interactive analyst workflow over the paper's 8.5 TB
// parquet archive.
//
// Endpoints:
//
//	GET /api/v1/datasets    — archive inventory (days, rows, time span, columns)
//	GET /api/v1/range       — range query: ?dataset=&column=[&node=][&t0=][&t1=][&step=]
//	GET /api/v1/rollup      — fleet rollup: ?dataset=&column=&group=cabinet|msb|fleet[&t0=][&t1=][&step=]
//	GET /api/v1/analysis/…  — server-side analyses (summary, edges, swings, bands,
//	                          earlywarning, overcooling, validation, failures, jobs)
//	GET /healthz            — liveness
//	GET /debug/vars         — queries served, cache hit/miss, bytes decoded, latency histogram
//
// The analysis routes require a cluster dataset in the archive; without one
// they answer 404 and the raw query routes still work. Both tiers share one
// decoded-table cache budget (-cache-mb).
//
// Usage:
//
//	queryd -data /path/to/archive [-addr :8080] [-nodes N] [-cache-mb 256]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/query"
	"repro/internal/source"
	"repro/internal/store"
)

// options is the parsed flag set.
type options struct {
	data          string
	addr          string
	nodes         int
	workers       int
	cacheMB       int
	timeout       time.Duration
	maxConcurrent int
	maxPoints     int
	quiet         bool
}

// parseFlags parses args (without the program name).
func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("queryd", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.data, "data", "", "archive directory (required)")
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address")
	fs.IntVar(&o.nodes, "nodes", 0, "system size the archive was produced with (enables cabinet/MSB rollups)")
	fs.IntVar(&o.workers, "workers", 0, "parallel scan workers (0 = GOMAXPROCS)")
	fs.IntVar(&o.cacheMB, "cache-mb", 256, "decoded-table cache budget in MiB")
	fs.DurationVar(&o.timeout, "timeout", 30*time.Second, "per-request deadline")
	fs.IntVar(&o.maxConcurrent, "max-concurrent", 32, "concurrent query limit (excess sheds with 503)")
	fs.IntVar(&o.maxPoints, "max-points", 200_000, "points/windows budget per response")
	fs.BoolVar(&o.quiet, "q", false, "suppress startup output")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.data == "" {
		return o, errors.New("queryd: -data is required")
	}
	return o, nil
}

// newServer opens the engine and binds the listener; the caller serves and
// shuts down.
func newServer(o options, out io.Writer) (*http.Server, net.Listener, *query.Engine, error) {
	// One decoded-table cache backs both the raw query tier and the
	// archive-backed analyses: a byte decoded for /api/v1/range is a byte
	// /api/v1/analysis/* does not decode again, and vice versa.
	cache := store.NewTableCache(int64(o.cacheMB) << 20)
	eng, err := query.Open(query.Config{
		Dir:     o.data,
		Nodes:   o.nodes,
		Workers: o.workers,
		Cache:   cache,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	// The analysis routes need the cluster dataset; serve raw queries
	// regardless (e.g. node-power-only archives). src stays a nil
	// interface on failure so the handler can tell.
	var src source.RunSource
	if arc, aerr := source.OpenArchive(source.ArchiveConfig{
		Dir:     o.data,
		Nodes:   o.nodes,
		Workers: o.workers,
		Cache:   cache,
	}); aerr == nil {
		src = arc
	} else if !o.quiet {
		fmt.Fprintf(out, "analysis endpoints disabled: %v\n", aerr)
	}
	infos, err := eng.Datasets()
	if err != nil {
		return nil, nil, nil, err
	}
	if len(infos) == 0 {
		return nil, nil, nil, fmt.Errorf("queryd: no datasets found in %s", o.data)
	}
	if !o.quiet {
		for _, info := range infos {
			fmt.Fprintf(out, "dataset %-14s %3d partition(s) %9d rows  span [%d, %d]\n",
				info.Name, info.Days, info.Rows, info.MinTime, info.MaxTime)
		}
	}
	handler := query.NewHandler(eng, query.ServerConfig{
		Source:        src,
		Timeout:       o.timeout,
		MaxConcurrent: o.maxConcurrent,
		MaxPoints:     o.maxPoints,
	})
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return nil, nil, nil, err
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		// The per-request timeout lives in the handler; WriteTimeout backs
		// it up with headroom for slow readers of large responses.
		WriteTimeout: o.timeout + 30*time.Second,
		IdleTimeout:  2 * time.Minute,
	}
	return srv, ln, eng, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("queryd: ")
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	srv, ln, _, err := newServer(o, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	if !o.quiet {
		fmt.Printf("serving %s on http://%s\n", o.data, ln.Addr())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, let in-flight queries finish.
	stop()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatal(err)
	}
}
