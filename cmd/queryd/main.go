// Command queryd serves a telemetry archive (as written by summitsim or
// cmd/repro -data) over HTTP: the online query tier of the reproduction,
// standing in for the interactive analyst workflow over the paper's 8.5 TB
// parquet archive.
//
// Endpoints:
//
//	GET /api/v1/datasets    — archive inventory (days, rows, time span, columns)
//	GET /api/v1/range       — range query: ?dataset=&column=[&node=][&t0=][&t1=][&step=]
//	GET /api/v1/rollup      — fleet rollup: ?dataset=&column=&group=cabinet|msb|fleet[&t0=][&t1=][&step=]
//	GET /api/v1/analysis/…  — server-side analyses (summary, edges, swings, bands,
//	                          earlywarning, overcooling, validation, failures, jobs)
//	GET /healthz            — liveness
//	GET /debug/vars         — queries served, cache hit/miss, bytes decoded, latency histogram
//	GET /debug/pprof/…      — Go profiling endpoints (only with -pprof)
//
// The analysis routes require a cluster dataset in the archive; without one
// they answer 404 and the raw query routes still work. Both tiers share one
// decoded-table cache budget (-cache-mb).
//
// Usage:
//
//	queryd -data /path/to/archive [-addr :8080] [-nodes N] [-cache-mb 256]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/query"
	"repro/internal/source"
	"repro/internal/store"
)

// options is the parsed flag set.
type options struct {
	data          string
	addr          string
	nodes         int
	workers       int
	cacheMB       int
	shards        int
	replicas      int
	hedge         time.Duration
	timeout       time.Duration
	maxConcurrent int
	maxPoints     int
	pprof         bool
	quiet         bool
}

// parseFlags parses args (without the program name).
func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("queryd", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.data, "data", "", "archive or fleet directory (required)")
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address")
	fs.IntVar(&o.nodes, "nodes", 0, "system size the archive was produced with (enables cabinet/MSB rollups; fleets read it per cluster)")
	fs.IntVar(&o.workers, "workers", 0, "parallel scan workers (0 = GOMAXPROCS)")
	fs.IntVar(&o.cacheMB, "cache-mb", 256, "decoded-table cache budget in MiB (per cluster)")
	fs.IntVar(&o.shards, "shards", 1, "serve each cluster's analyses through an N-shard federated source")
	fs.IntVar(&o.replicas, "replicas", 1, "federation owners per day partition (with -shards > 1)")
	fs.DurationVar(&o.hedge, "hedge", 0, "federation hedged-request delay, e.g. 20ms (0 = off)")
	fs.DurationVar(&o.timeout, "timeout", 30*time.Second, "per-request deadline")
	fs.IntVar(&o.maxConcurrent, "max-concurrent", 32, "concurrent query limit (excess sheds with 503)")
	fs.IntVar(&o.maxPoints, "max-points", 200_000, "points/windows budget per response")
	fs.BoolVar(&o.pprof, "pprof", false, "expose Go profiling endpoints under /debug/pprof/")
	fs.BoolVar(&o.quiet, "q", false, "suppress startup output")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.data == "" {
		return o, errors.New("queryd: -data is required")
	}
	if o.shards < 1 {
		return o, errors.New("queryd: -shards must be >= 1")
	}
	return o, nil
}

// openCluster builds one serving member over an archive directory: its
// query engine, and its analysis source — direct, or an N-shard federated
// coordinator when -shards > 1.
func openCluster(o options, name, dir string, out io.Writer) (query.Cluster, error) {
	// One decoded-table cache backs both the raw query tier and the
	// archive-backed analyses: a byte decoded for /api/v1/range is a byte
	// /api/v1/analysis/* does not decode again, and vice versa. In sharded
	// mode each federation shard instead carries a private slice of the
	// budget (its stats surface per shard in /debug/vars).
	cache := store.NewTableCache(int64(o.cacheMB) << 20)
	var src source.RunSource
	var meta source.Meta
	var aerr error
	if o.shards > 1 {
		var fed *source.FederatedSource
		fed, aerr = source.OpenShardedArchive(source.ShardedArchiveConfig{
			Archive:      source.ArchiveConfig{Dir: dir, Nodes: o.nodes, Workers: o.workers},
			Shards:       o.shards,
			CacheBytes:   int64(o.cacheMB) << 20,
			Replicas:     o.replicas,
			HedgeDelay:   o.hedge,
			AllowPartial: true,
			Workers:      o.workers,
		})
		if aerr == nil {
			src = fed
			meta, _ = fed.Meta()
		}
	} else {
		var arc *source.ArchiveSource
		arc, aerr = source.OpenArchive(source.ArchiveConfig{
			Dir: dir, Nodes: o.nodes, Workers: o.workers, Cache: cache,
		})
		if aerr == nil {
			src = arc
			meta, _ = arc.Meta()
		}
	}
	// The analysis routes need the cluster dataset; serve raw queries
	// regardless (e.g. node-power-only archives). src stays a nil
	// interface on failure so the handler can tell.
	if aerr != nil && !o.quiet {
		fmt.Fprintf(out, "cluster %s: analysis endpoints disabled: %v\n", name, aerr)
	}
	nodes := o.nodes
	if nodes == 0 {
		nodes = meta.Nodes
	}
	eng, err := query.Open(query.Config{
		Dir:     dir,
		Nodes:   nodes,
		Site:    meta.Site,
		Workers: o.workers,
		Cache:   cache,
	})
	if err != nil {
		return query.Cluster{}, err
	}
	infos, err := eng.Datasets()
	if err != nil {
		return query.Cluster{}, err
	}
	if len(infos) == 0 {
		return query.Cluster{}, fmt.Errorf("queryd: no datasets found in %s", dir)
	}
	if !o.quiet {
		for _, info := range infos {
			fmt.Fprintf(out, "%-12s dataset %-14s %3d partition(s) %9d rows  span [%d, %d]\n",
				name, info.Name, info.Days, info.Rows, info.MinTime, info.MaxTime)
		}
	}
	return query.Cluster{Name: name, Engine: eng, Source: src}, nil
}

// newServer opens the engine(s) and binds the listener; the caller serves
// and shuts down. -data may be a single archive or a fleet root
// (fleet.json, or one subdirectory per cluster).
func newServer(o options, out io.Writer) (*http.Server, net.Listener, *query.Engine, error) {
	var clusters []query.Cluster
	manifest, ferr := source.DiscoverFleet(o.data)
	switch {
	case ferr == nil:
		for _, e := range manifest.Clusters {
			c, err := openCluster(o, e.Name, e.Path(o.data), out)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("queryd: cluster %s: %w", e.Name, err)
			}
			clusters = append(clusters, c)
		}
	case errors.Is(ferr, source.ErrNotFleet):
		c, err := openCluster(o, "", o.data, out)
		if err != nil {
			return nil, nil, nil, err
		}
		clusters = append(clusters, c)
	default:
		return nil, nil, nil, ferr
	}
	handler, err := query.NewFleetHandler(clusters, query.ServerConfig{
		Timeout:       o.timeout,
		MaxConcurrent: o.maxConcurrent,
		MaxPoints:     o.maxPoints,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return nil, nil, nil, err
	}
	// -pprof mounts the Go profiler in front of the query routes so the
	// serving path can be profiled under real HTTP load (see
	// EXPERIMENTS.md, "Profiling the read path"). Off by default: queryd
	// may face untrusted readers, profiles should be opt-in.
	var root http.Handler = handler
	if o.pprof {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		root = mux
	}
	srv := &http.Server{
		Handler:           root,
		ReadHeaderTimeout: 5 * time.Second,
		// The per-request timeout lives in the handler; WriteTimeout backs
		// it up with headroom for slow readers of large responses.
		WriteTimeout: o.timeout + 30*time.Second,
		IdleTimeout:  2 * time.Minute,
	}
	return srv, ln, clusters[0].Engine, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("queryd: ")
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	srv, ln, _, err := newServer(o, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	if !o.quiet {
		fmt.Printf("serving %s on http://%s\n", o.data, ln.Addr())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, let in-flight queries finish.
	stop()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatal(err)
	}
}
