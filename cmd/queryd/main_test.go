package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/store"
)

const (
	e2eNodes = 36 // two full cabinets at 18 nodes/cabinet
	e2eDays  = 3
	e2eStep  = int64(300)
	e2eDay   = int64(86400)
)

func e2ePower(node, t int64) float64 {
	return 2000 + 25*float64(node) + float64(t%7200)*0.005
}

// writeE2EArchive builds a multi-day archive through the store layer, exactly
// as summitsim would.
func writeE2EArchive(t *testing.T, dir string) {
	t.Helper()
	ds, err := store.NewDataset(dir, "node-power")
	if err != nil {
		t.Fatal(err)
	}
	for day := 0; day < e2eDays; day++ {
		var ts, node []int64
		var val []float64
		for tm := int64(day) * e2eDay; tm < int64(day+1)*e2eDay; tm += e2eStep {
			for n := int64(0); n < e2eNodes; n++ {
				ts = append(ts, tm)
				node = append(node, n)
				val = append(val, e2ePower(n, tm))
			}
		}
		err := ds.WriteDay(day, &store.Table{Cols: []store.Column{
			{Name: "timestamp", Ints: ts},
			{Name: "node", Ints: node},
			{Name: "input_power.mean", Floats: val},
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// startQueryd runs the real flag-parsing and server-construction path on a
// loopback port and serves in the background.
func startQueryd(t *testing.T, args ...string) string {
	t.Helper()
	o, err := parseFlags(args)
	if err != nil {
		t.Fatal(err)
	}
	srv, ln, _, err := newServer(o, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String()
}

func getInto(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == 200 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestQuerydEndToEnd(t *testing.T) {
	dir := t.TempDir()
	writeE2EArchive(t, dir)
	base := startQueryd(t,
		"-data", dir, "-addr", "127.0.0.1:0",
		"-nodes", fmt.Sprint(e2eNodes), "-q")

	// Liveness.
	if code := getInto(t, base+"/healthz", nil); code != 200 {
		t.Fatalf("healthz = %d", code)
	}

	// Inventory matches the archive we wrote.
	var inv struct {
		Datasets []struct {
			Name string `json:"name"`
			Days int    `json:"days"`
			Rows int64  `json:"rows"`
		} `json:"datasets"`
	}
	if code := getInto(t, base+"/api/v1/datasets", &inv); code != 200 {
		t.Fatalf("datasets = %d", code)
	}
	wantRows := int64(e2eDays) * (e2eDay / e2eStep) * e2eNodes
	if len(inv.Datasets) != 1 || inv.Datasets[0].Days != e2eDays || inv.Datasets[0].Rows != wantRows {
		t.Fatalf("inventory = %+v", inv.Datasets)
	}

	// Range query for one node across the day 1/2 boundary; verify every
	// point against a direct store scan.
	const node = 19
	t0, t1 := 2*e2eDay-3600, 2*e2eDay+3600
	rangeURL := fmt.Sprintf(
		"%s/api/v1/range?dataset=node-power&column=input_power.mean&node=%d&t0=%d&t1=%d",
		base, node, t0, t1)
	var rr struct {
		Points []struct {
			T int64   `json:"t"`
			V float64 `json:"v"`
		} `json:"points"`
		Stats struct {
			DaysScanned int   `json:"days_scanned"`
			DaysPruned  int   `json:"days_pruned"`
			CacheHits   int64 `json:"cache_hits"`
			CacheMisses int64 `json:"cache_misses"`
		} `json:"stats"`
	}
	if code := getInto(t, rangeURL, &rr); code != 200 {
		t.Fatalf("range = %d", code)
	}
	ds, err := store.NewDataset(dir, "node-power")
	if err != nil {
		t.Fatal(err)
	}
	type pt struct {
		T int64
		V float64
	}
	var want []pt
	for day := 0; day < e2eDays; day++ {
		tab, err := ds.ReadDay(day)
		if err != nil {
			t.Fatal(err)
		}
		ts := tab.Col("timestamp").Ints
		nd := tab.Col("node").Ints
		vs := tab.Col("input_power.mean").Floats
		for i := range ts {
			if nd[i] == node && ts[i] >= t0 && ts[i] < t1 {
				want = append(want, pt{ts[i], vs[i]})
			}
		}
	}
	if len(rr.Points) != len(want) {
		t.Fatalf("range returned %d points, direct scan %d", len(rr.Points), len(want))
	}
	for i, p := range rr.Points {
		if p.T != want[i].T || p.V != want[i].V { //lint:allow floatcompare serving must return archived values bit-exactly
			t.Fatalf("point %d = %+v, direct scan %+v", i, p, want[i])
		}
	}
	if rr.Stats.DaysScanned != 2 || rr.Stats.DaysPruned != 1 {
		t.Errorf("pruning stats = %+v", rr.Stats)
	}
	if rr.Stats.CacheMisses != 2 || rr.Stats.CacheHits != 0 {
		t.Errorf("cold stats = %+v", rr.Stats)
	}

	// Downsampled query: windows carry per-window count/min/max/mean.
	dsURL := fmt.Sprintf(
		"%s/api/v1/range?dataset=node-power&column=input_power.mean&node=%d&t0=%d&t1=%d&step=1800",
		base, node, t0, t1)
	var dr struct {
		Windows []struct {
			T     int64   `json:"t"`
			Count int64   `json:"count"`
			Min   float64 `json:"min"`
			Max   float64 `json:"max"`
			Mean  float64 `json:"mean"`
		} `json:"windows"`
	}
	if code := getInto(t, dsURL, &dr); code != 200 {
		t.Fatalf("downsampled range = %d", code)
	}
	if len(dr.Windows) != 4 {
		t.Fatalf("%d windows, want 4", len(dr.Windows))
	}
	for _, w := range dr.Windows {
		if w.Count != 1800/e2eStep {
			t.Fatalf("window %+v: count != %d", w, 1800/e2eStep)
		}
		if w.Min > w.Mean || w.Mean > w.Max {
			t.Fatalf("window %+v not ordered", w)
		}
	}

	// Rollup query: two cabinets; fleet-wide sums must match a direct scan.
	ruURL := fmt.Sprintf(
		"%s/api/v1/rollup?dataset=node-power&column=input_power.mean&group=cabinet&t0=%d&t1=%d&step=3600",
		base, 0, 7200)
	var ru struct {
		Series []struct {
			Label   string `json:"label"`
			Windows []struct {
				T     int64   `json:"t"`
				Count int64   `json:"count"`
				Sum   float64 `json:"sum"`
			} `json:"windows"`
		} `json:"series"`
	}
	if code := getInto(t, ruURL, &ru); code != 200 {
		t.Fatalf("rollup = %d", code)
	}
	if len(ru.Series) != 2 || ru.Series[0].Label != "cab000" || ru.Series[1].Label != "cab001" {
		t.Fatalf("rollup series = %+v", ru.Series)
	}
	var gotSum float64
	var gotCount int64
	for _, s := range ru.Series {
		for _, w := range s.Windows {
			gotSum += w.Sum
			gotCount += w.Count
		}
	}
	var wantSum float64
	var wantCount int64
	for tm := int64(0); tm < 7200; tm += e2eStep {
		for n := int64(0); n < e2eNodes; n++ {
			wantSum += e2ePower(n, tm)
			wantCount++
		}
	}
	if gotCount != wantCount || gotSum < wantSum*(1-1e-9) || gotSum > wantSum*(1+1e-9) {
		t.Errorf("rollup total = %v/%d samples, direct scan %v/%d",
			gotSum, gotCount, wantSum, wantCount)
	}

	// Repeating the identical range query must be served from cache and the
	// global counters must say so.
	if code := getInto(t, rangeURL, &rr); code != 200 {
		t.Fatalf("repeat range = %d", code)
	}
	if rr.Stats.CacheHits != 2 || rr.Stats.CacheMisses != 0 {
		t.Errorf("warm stats = %+v", rr.Stats)
	}
	var vars struct {
		Queries map[string]int64 `json:"queries"`
		Cache   map[string]int64 `json:"cache"`
	}
	if code := getInto(t, base+"/debug/vars", &vars); code != 200 {
		t.Fatalf("vars = %d", code)
	}
	if vars.Cache["hits"] < 2 {
		t.Errorf("global cache hits = %d", vars.Cache["hits"])
	}
	if vars.Queries["range"] != 3 || vars.Queries["rollup"] != 1 {
		t.Errorf("query counters = %+v", vars.Queries)
	}

	// Error surface.
	if code := getInto(t, base+"/api/v1/range?dataset=nope&column=x", nil); code != 404 {
		t.Errorf("unknown dataset = %d", code)
	}
}

// writeFleetRoot simulates two small clusters into subdirectories of root and
// writes the fleet manifest, exactly as summitsim -clusters does.
func writeFleetRoot(t *testing.T, root string) source.FleetManifest {
	t.Helper()
	var manifest source.FleetManifest
	clusters := []struct {
		name, site string
		nodes      int
	}{
		{"summit-0", "summit", 18},
		{"frontier-0", "frontier", 12},
	}
	for i, c := range clusters {
		cfg := sim.Config{
			Seed:             sim.DeriveSeed(7, i),
			Nodes:            c.nodes,
			Cluster:          c.name,
			Site:             c.site,
			StartTime:        1_577_836_800,
			DurationSec:      86400 + 7200, // one full day + 2 h -> two partitions
			StepSec:          300,
			SamplesPerWindow: 1,
			Jobs:             8,
		}
		s, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join(root, c.name)
		col := core.NewCollector(s, cfg)
		nw, err := core.NewNodeDatasetWriter(dir, cfg.Nodes, cfg.Site)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(col, nw)
		if err != nil {
			t.Fatal(err)
		}
		if err := nw.Close(); err != nil {
			t.Fatal(err)
		}
		col.SetFailures(res.Failures)
		if err := core.WriteDatasets(dir, col.Data()); err != nil {
			t.Fatal(err)
		}
		manifest.Clusters = append(manifest.Clusters, source.FleetEntry{
			Name: c.name, Site: c.site, Nodes: c.nodes, Dir: c.name,
		})
	}
	if err := source.WriteFleetManifest(root, manifest); err != nil {
		t.Fatal(err)
	}
	return manifest
}

// TestQuerydFleet serves a two-cluster fleet root through the federated
// query plane: per-cluster routing via ?cluster=, the fleet inventory and
// merge endpoints, and federation fan-out stats in /debug/vars.
func TestQuerydFleet(t *testing.T) {
	root := t.TempDir()
	writeFleetRoot(t, root)
	base := startQueryd(t,
		"-data", root, "-addr", "127.0.0.1:0",
		"-shards", "2", "-replicas", "2", "-q")

	// Inventory: both members, analysis enabled, federation configured.
	var inv struct {
		Clusters []struct {
			Name       string `json:"name"`
			Site       string `json:"site"`
			Nodes      int    `json:"nodes"`
			Windows    int    `json:"windows"`
			Analysis   bool   `json:"analysis"`
			Federation *struct {
				Shards   int   `json:"shards"`
				Replicas int   `json:"replicas"`
				Fanouts  int64 `json:"fanouts"`
			} `json:"federation"`
		} `json:"clusters"`
	}
	if code := getInto(t, base+"/api/v1/clusters", &inv); code != 200 {
		t.Fatalf("clusters = %d", code)
	}
	if len(inv.Clusters) != 2 || inv.Clusters[0].Name != "summit-0" || inv.Clusters[1].Name != "frontier-0" {
		t.Fatalf("inventory = %+v", inv.Clusters)
	}
	for _, c := range inv.Clusters {
		if !c.Analysis || c.Federation == nil {
			t.Fatalf("cluster %s: analysis=%v federation=%v", c.Name, c.Analysis, c.Federation)
		}
		if c.Federation.Shards != 2 || c.Federation.Replicas != 2 {
			t.Errorf("cluster %s federation = %+v", c.Name, c.Federation)
		}
	}
	if inv.Clusters[0].Site != "summit" || inv.Clusters[1].Site != "frontier" {
		t.Errorf("sites = %s, %s", inv.Clusters[0].Site, inv.Clusters[1].Site)
	}

	// Per-cluster routing: a multi-cluster server demands ?cluster=.
	if code := getInto(t, base+"/api/v1/datasets", nil); code != 400 {
		t.Errorf("datasets without cluster = %d, want 400", code)
	}
	if code := getInto(t, base+"/api/v1/datasets?cluster=nope", nil); code != 404 {
		t.Errorf("unknown cluster = %d, want 404", code)
	}
	var ds struct {
		Datasets []struct {
			Name string `json:"name"`
		} `json:"datasets"`
	}
	if code := getInto(t, base+"/api/v1/datasets?cluster=frontier-0", &ds); code != 200 {
		t.Fatalf("datasets?cluster= = %d", code)
	}
	if len(ds.Datasets) == 0 {
		t.Fatal("no datasets for frontier-0")
	}
	var sum struct {
		Cluster struct {
			MeanW float64 `json:"mean_w"`
		} `json:"cluster_power"`
	}
	if code := getInto(t, base+"/api/v1/analysis/summary?cluster=summit-0", &sum); code != 200 {
		t.Fatalf("analysis summary = %d", code)
	}

	// Fleet summary: per-member rows plus merged totals.
	var fs struct {
		Clusters []struct {
			Cluster   string  `json:"cluster"`
			Nodes     int     `json:"nodes"`
			EnergyMWh float64 `json:"energy_mwh"`
		} `json:"clusters"`
		Fleet struct {
			Clusters  int     `json:"clusters"`
			Nodes     int     `json:"nodes"`
			MaxPowerW float64 `json:"max_power_w"`
			EnergyMWh float64 `json:"energy_mwh"`
		} `json:"fleet"`
	}
	if code := getInto(t, base+"/api/v1/fleet/summary", &fs); code != 200 {
		t.Fatalf("fleet summary = %d", code)
	}
	if fs.Fleet.Clusters != 2 || fs.Fleet.Nodes != 18+12 {
		t.Fatalf("fleet totals = %+v", fs.Fleet)
	}
	sumEnergy := 0.0
	for _, c := range fs.Clusters {
		sumEnergy += c.EnergyMWh
	}
	if math.Abs(fs.Fleet.EnergyMWh-sumEnergy) > 1e-9*sumEnergy {
		t.Errorf("fleet energy %v != Σ cluster energies %v", fs.Fleet.EnergyMWh, sumEnergy)
	}

	// Fleet series merge: the merged fleet curve sums member curves.
	var fss struct {
		Clusters []string `json:"clusters"`
		Points   []struct {
			T int64    `json:"t"`
			V *float64 `json:"v"`
		} `json:"points"`
	}
	u := base + "/api/v1/fleet/series?name=" + source.SeriesClusterPower
	if code := getInto(t, u, &fss); code != 200 {
		t.Fatalf("fleet series = %d", code)
	}
	if len(fss.Clusters) != 2 || len(fss.Points) == 0 {
		t.Fatalf("fleet series = %d clusters, %d points", len(fss.Clusters), len(fss.Points))
	}
	// A single-member "merge" answers the member's own curve.
	var solo fss2
	if code := getInto(t, u+"&clusters=summit-0", &solo); code != 200 {
		t.Fatalf("subset fleet series = %d", code)
	}
	if len(solo.Clusters) != 1 || solo.Clusters[0] != "summit-0" {
		t.Fatalf("subset clusters = %v", solo.Clusters)
	}
	if code := getInto(t, u+"&clusters=nope", nil); code != 404 {
		t.Errorf("unknown subset = %d, want 404", code)
	}

	// Federation stats made it to /debug/vars, and the merges above drove
	// fan-outs through every member's shards.
	var vars struct {
		Clusters map[string]struct {
			Cache      map[string]int64 `json:"cache"`
			Federation *struct {
				Fanouts  int64 `json:"fanouts"`
				PerShard []struct {
					Shard    string `json:"name"`
					OwnedDay int    `json:"owned_days"`
					Requests int64  `json:"requests"`
				} `json:"per_shard"`
			} `json:"federation"`
		} `json:"clusters"`
	}
	if code := getInto(t, base+"/debug/vars", &vars); code != 200 {
		t.Fatalf("vars = %d", code)
	}
	for _, name := range []string{"summit-0", "frontier-0"} {
		c, ok := vars.Clusters[name]
		if !ok || c.Federation == nil {
			t.Fatalf("vars missing federation block for %s: %+v", name, vars.Clusters)
		}
		if c.Federation.Fanouts == 0 {
			t.Errorf("%s: no fan-outs recorded", name)
		}
		if len(c.Federation.PerShard) != 2 {
			t.Errorf("%s: per-shard stats = %+v", name, c.Federation.PerShard)
		}
		var reqs int64
		for _, s := range c.Federation.PerShard {
			reqs += s.Requests
		}
		if reqs == 0 {
			t.Errorf("%s: shards served no requests", name)
		}
	}
}

type fss2 struct {
	Clusters []string `json:"clusters"`
}

func TestParseFlags(t *testing.T) {
	if _, err := parseFlags(nil); err == nil || !strings.Contains(err.Error(), "-data") {
		t.Errorf("missing -data accepted: %v", err)
	}
	o, err := parseFlags([]string{"-data", "/x", "-nodes", "72", "-cache-mb", "64"})
	if err != nil {
		t.Fatal(err)
	}
	if o.data != "/x" || o.nodes != 72 || o.cacheMB != 64 {
		t.Errorf("options = %+v", o)
	}
}

func TestNewServerRejectsEmptyArchive(t *testing.T) {
	o, err := parseFlags([]string{"-data", t.TempDir(), "-addr", "127.0.0.1:0", "-q"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := newServer(o, io.Discard); err == nil {
		t.Fatal("empty archive accepted")
	}
}

func TestPprofGate(t *testing.T) {
	dir := t.TempDir()
	writeE2EArchive(t, dir)
	// Default: profiling endpoints are not mounted.
	base := startQueryd(t, "-data", dir, "-addr", "127.0.0.1:0", "-q")
	if code := getInto(t, base+"/debug/pprof/cmdline", nil); code != 404 {
		t.Fatalf("pprof served without -pprof: status %d", code)
	}
	// Opt-in: mounted, and the query routes still work behind the mux.
	base = startQueryd(t, "-data", dir, "-addr", "127.0.0.1:0", "-q", "-pprof")
	if code := getInto(t, base+"/debug/pprof/cmdline", nil); code != 200 {
		t.Fatalf("pprof status with -pprof = %d", code)
	}
	if code := getInto(t, base+"/healthz", nil); code != 200 {
		t.Fatalf("healthz behind pprof mux = %d", code)
	}
}
