package main

import (
	"strings"
	"testing"
)

// TestRunEndToEnd drives the whole demonstration — sim → change filter →
// TCP exporters → aggregation server → stream pipeline — and requires the
// lossless-transport verdict.
func TestRunEndToEnd(t *testing.T) {
	var buf strings.Builder
	if err := run(16, 10, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"aggregation tier listening",
		"exported",
		"pipeline applied",
		"no loss across the transport",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsBadNodeCount(t *testing.T) {
	var buf strings.Builder
	if err := run(0, 10, &buf); err == nil {
		t.Error("zero nodes accepted")
	}
}
