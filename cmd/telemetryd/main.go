// Command telemetryd demonstrates the out-of-band telemetry transport end
// to end on one machine: it starts the aggregation-tier TCP server, runs a
// short simulation, streams every node's power through per-shard exporters
// (288:1 fan-in) behind the paper's change filter, and terminates the
// stream in the same streaming-analysis plane streamd serves — reporting
// transport and pipeline statistics when the run finishes. It is the batch
// smoke test of the §2 collection path; streamd is the serving version.
//
// Usage:
//
//	telemetryd [-nodes N] [-minutes M]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/units"
)

// run executes the end-to-end demonstration and writes the report to out.
func run(nodes int, minutes float64, out io.Writer) error {
	cfg := repro.ScaledConfig(nodes, time.Duration(minutes*float64(time.Minute)))

	// Aggregation tier: the stream pipeline replaces the ad-hoc coarsener
	// map this command used to carry — arriving batches flow through the
	// same sharded windowing, rollup and edge operators streamd serves.
	pipe, err := stream.NewPipeline(stream.Config{
		Nodes:      nodes,
		StartTime:  cfg.StartTime,
		QueueDepth: 4096,
	})
	if err != nil {
		return err
	}
	srv, err := telemetry.NewServer("127.0.0.1:0", pipe.Ingest)
	if err != nil {
		pipe.Close()
		return err
	}
	defer srv.Close()
	fmt.Fprintf(out, "aggregation tier listening on %s\n", srv.Addr())

	// Node tier: run the twin and export a stream per fan-in shard.
	s, err := sim.New(cfg)
	if err != nil {
		pipe.Close()
		return err
	}
	shards := (nodes + units.FanInRatio - 1) / units.FanInRatio
	exporters := make([]*telemetry.Exporter, shards)
	for i := range exporters {
		if exporters[i], err = telemetry.Dial(srv.Addr()); err != nil {
			pipe.Close()
			return err
		}
	}
	filter := telemetry.NewChangeFilter()
	start := time.Now() //lint:allow determinism wall-clock timing for the progress log only
	var pushErr error
	res, err := s.Run(sim.ObserverFunc(func(snap *sim.Snapshot) {
		if pushErr != nil {
			return
		}
		for i := range snap.NodeStat {
			node := topology.NodeID(i)
			sample := telemetry.Sample{
				Node: node, Metric: telemetry.MetricInputPower,
				T: snap.T, Value: snap.NodeStat[i].Mean,
			}
			if !filter.Pass(sample) {
				continue
			}
			exp := exporters[i/units.FanInRatio%shards]
			if perr := exp.Push(sample); perr != nil {
				pushErr = perr
				return
			}
		}
	}))
	if err != nil {
		pipe.Close()
		return err
	}
	if pushErr != nil {
		pipe.Close()
		return pushErr
	}
	var sent int64
	for _, exp := range exporters {
		if cerr := exp.Close(); cerr != nil {
			pipe.Close()
			return cerr
		}
		sent += exp.Sent()
	}
	if err := srv.Close(); err != nil {
		pipe.Close()
		return err
	}
	st := srv.Stats()
	pipe.Close() // flush every open window through the operators
	snap := pipe.Snapshot()

	elapsed := time.Since(start) //lint:allow determinism wall-clock timing for the progress log only
	fmt.Fprintf(out, "simulated %d windows on %d nodes in %.1fs\n", res.Steps, nodes, elapsed.Seconds())
	fmt.Fprintf(out, "exported %d samples over %d shard connections (%d frames)\n",
		sent, shards, st.Frames)
	fmt.Fprintf(out, "server ingested %d samples (%.0f samples/s); %d channel windows coarsened\n",
		st.Received, float64(st.Received)/elapsed.Seconds(), snap.Ingest.ChannelWindows)
	fmt.Fprintf(out, "pipeline applied %d frames over %ds; fleet energy %s; %d edges detected\n",
		snap.Ingest.Frames, snap.SpanSec, units.Joules(snap.Rollup.EnergyJ), snap.EdgesTotal)
	if st.Received != sent {
		return fmt.Errorf("LOSS: sent %d != received %d", sent, st.Received)
	}
	if d := snap.Ingest.Dropped + snap.Ingest.Late + snap.Ingest.Rejected; d != 0 {
		return fmt.Errorf("LOSS: pipeline dropped %d samples (%+v)", d, snap.Ingest)
	}
	fmt.Fprintln(out, "no loss across the transport — out-of-band path verified")
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("telemetryd: ")
	nodes := flag.Int("nodes", 72, "system size in nodes")
	minutes := flag.Float64("minutes", 20, "simulated span in minutes")
	flag.Parse()
	if err := run(*nodes, *minutes, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
