// Command telemetryd demonstrates the out-of-band telemetry transport end
// to end on one machine: it starts the aggregation-tier TCP server, runs a
// short simulation, streams every node's metrics through per-shard
// exporters (288:1 fan-in), and reports ingest statistics — the
// reproduction of the paper's §2 collection path as a running service.
//
// Usage:
//
//	telemetryd [-nodes N] [-minutes M]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/tsagg"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("telemetryd: ")
	nodes := flag.Int("nodes", 72, "system size in nodes")
	minutes := flag.Float64("minutes", 20, "simulated span in minutes")
	flag.Parse()

	// Aggregation tier: coarsen arriving samples per channel.
	var mu sync.Mutex
	coarseners := map[uint64]*tsagg.Coarsener{}
	windows := 0
	sink := func(batch []telemetry.Sample) {
		mu.Lock()
		defer mu.Unlock()
		for _, s := range batch {
			key := uint64(s.Node)<<16 | uint64(s.Metric)
			c, ok := coarseners[key]
			if !ok {
				c = tsagg.NewCoarsener(units.CoarsenWindowSec, func(tsagg.WindowStat) {
					windows++
				})
				coarseners[key] = c
			}
			c.Add(s.T, s.Value)
		}
	}
	srv, err := telemetry.NewServer("127.0.0.1:0", sink)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("aggregation tier listening on %s\n", srv.Addr())

	// Node tier: run the twin and export a stream per fan-in shard.
	cfg := repro.ScaledConfig(*nodes, time.Duration(*minutes*float64(time.Minute)))
	s, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	shards := (*nodes + units.FanInRatio - 1) / units.FanInRatio
	exporters := make([]*telemetry.Exporter, shards)
	for i := range exporters {
		exporters[i], err = telemetry.Dial(srv.Addr())
		if err != nil {
			log.Fatal(err)
		}
	}
	filter := telemetry.NewChangeFilter()
	start := time.Now()
	res, err := s.Run(sim.ObserverFunc(func(snap *sim.Snapshot) {
		for i := range snap.NodeStat {
			node := topology.NodeID(i)
			sample := telemetry.Sample{
				Node: node, Metric: telemetry.MetricInputPower,
				T: snap.T, Value: snap.NodeStat[i].Mean,
			}
			if !filter.Pass(sample) {
				continue
			}
			exp := exporters[i/units.FanInRatio%shards]
			if err := exp.Push(sample); err != nil {
				log.Fatal(err)
			}
		}
	}))
	if err != nil {
		log.Fatal(err)
	}
	var sent int64
	for _, exp := range exporters {
		if err := exp.Close(); err != nil {
			log.Fatal(err)
		}
		sent += exp.Sent()
	}
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("simulated %d windows on %d nodes in %.1fs\n", res.Steps, *nodes, elapsed.Seconds())
	fmt.Printf("exported %d samples over %d shard connections (%d frames)\n",
		sent, shards, srv.Frames())
	fmt.Printf("server ingested %d samples (%.0f samples/s); %d channel windows coarsened\n",
		srv.Received(), float64(srv.Received())/elapsed.Seconds(), windows)
	if srv.Received() != sent {
		log.Fatalf("LOSS: sent %d != received %d", sent, srv.Received())
	}
	fmt.Println("no loss across the transport — out-of-band path verified")
}
