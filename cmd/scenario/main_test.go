package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/whatif"
)

func TestValidateModes(t *testing.T) {
	cases := []struct {
		name string
		o    options
		ok   bool
	}{
		{"none", options{}, false},
		{"list", options{list: true}, true},
		{"two modes", options{list: true, describe: "x"}, false},
		{"run without out", options{runRef: "x"}, false},
		{"run with out", options{runRef: "x", out: "d"}, true},
		{"diff one arg", options{diff: "a"}, false},
		{"diff pair", options{diff: "a,b"}, true},
		{"neg workers", options{list: true, workers: -1}, false},
	}
	for _, c := range cases {
		if err := c.o.validate(); (err == nil) != c.ok {
			t.Errorf("%s: validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{list: true}); err != nil {
		t.Fatalf("list: %v", err)
	}
	out := buf.String()
	for _, s := range scenario.Catalog() {
		if !strings.Contains(out, s.Name) {
			t.Errorf("listing lacks %q", s.Name)
		}
	}
}

func TestDescribe(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{describe: "trace-replay"}); err != nil {
		t.Fatalf("describe: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"trace-replay", "hash ", "trace: ", "rows"} {
		if !strings.Contains(out, want) {
			t.Errorf("describe output lacks %q:\n%s", want, out)
		}
	}
	if err := run(io.Discard, options{describe: "no-such"}); err == nil {
		t.Error("describe of unknown scenario succeeded")
	}
}

// TestRunEndToEnd drives the full -run path on a catalog scenario and
// checks the archive artifacts: report.json must equal a fresh in-memory
// assessment byte for byte (the FromSource parity contract).
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(&buf, options{runRef: "trace-replay", out: dir, workers: 2}); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "scenario trace-replay") || !strings.Contains(out, "mean PUE") {
		t.Errorf("run summary incomplete:\n%s", out)
	}

	var m struct {
		Spec    scenario.Spec `json:"spec"`
		Hash    string        `json:"hash"`
		RunSeed uint64        `json:"run_seed"`
		Trace   *struct {
			Jobs int `json:"jobs"`
		} `json:"trace"`
	}
	readJSON(t, filepath.Join(dir, "scenario.json"), &m)
	if m.Spec.Name != "trace-replay" || m.Hash == "" || m.RunSeed == 0 {
		t.Errorf("scenario.json manifest incomplete: %+v", m)
	}
	if m.Trace == nil || m.Trace.Jobs == 0 {
		t.Error("scenario.json lacks trace stats")
	}

	var rep whatif.Report
	readJSON(t, filepath.Join(dir, "report.json"), &rep)
	if rep.Label != "trace-replay" || rep.Hash != m.Hash || rep.Seed != m.RunSeed {
		t.Errorf("report identity mismatch: %+v vs manifest %+v", rep, m)
	}

	// The archived report must match a fresh memory-source assessment.
	r, err := scenario.Resolve("trace-replay")
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := scenario.Run(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.Assess(data.Source(), whatif.Weights{})
	if err != nil {
		t.Fatal(err)
	}
	wantRaw, _ := json.Marshal(want)
	gotRaw, _ := json.Marshal(rep)
	if !bytes.Equal(wantRaw, gotRaw) {
		t.Errorf("archived report differs from memory assessment:\n got %s\nwant %s", gotRaw, wantRaw)
	}
}

func TestRunSpecFile(t *testing.T) {
	dir := t.TempDir()
	spec := scenario.Spec{
		Version: scenario.Version, Name: "tiny", Nodes: 16, DurationSec: 3600,
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "tiny.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, options{runRef: path, out: filepath.Join(dir, "out")}); err != nil {
		t.Fatalf("run spec file: %v", err)
	}
	if !strings.Contains(buf.String(), "scenario tiny") {
		t.Errorf("spec-file run summary wrong:\n%s", buf.String())
	}
}

func TestDiff(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{diff: "winter-economizer,heatwave-summer", workers: 2}); err != nil {
		t.Fatalf("diff: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"winter-economizer", "heatwave-summer", "mean PUE", "delta"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output lacks %q:\n%s", want, out)
		}
	}
}

func readJSON(t *testing.T, path string, v any) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
}
