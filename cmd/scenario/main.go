// Command scenario manages the declarative scenario catalog: named,
// versioned specs bundling everything a twin run needs (topology, workload
// source, weather and failure regimes, plant tuning, cap schedules, span,
// seed) into a single bit-reproducible artifact.
//
// Usage:
//
//	scenario -list
//	scenario -describe <name|spec.json>
//	scenario -run <name|spec.json> -out dir [-workers N]
//	scenario -diff <a>,<b> [-workers N]
//
// -run simulates the scenario, archives the datasets under -out, re-opens
// the archive and reduces it to the same objective report the what-if
// sweeps emit (a pure FromSource computation, so the report is identical
// whether served from memory or the archive). The archive is byte-stable
// for any -workers value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/source"
	"repro/internal/whatif"
)

// options carries the parsed flag surface so run is testable.
type options struct {
	list     bool
	describe string
	runRef   string
	diff     string
	out      string
	workers  int
}

// validate rejects inconsistent flag combinations before any work runs.
func (o options) validate() error {
	modes := 0
	for _, on := range []bool{o.list, o.describe != "", o.runRef != "", o.diff != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("exactly one of -list, -describe, -run, -diff is required")
	}
	if o.workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", o.workers)
	}
	if o.runRef != "" && o.out == "" {
		return fmt.Errorf("-run requires -out (the archive directory)")
	}
	if o.diff != "" && len(strings.Split(o.diff, ",")) != 2 {
		return fmt.Errorf("-diff takes exactly two scenarios: -diff a,b")
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("scenario: ")
	var o options
	flag.BoolVar(&o.list, "list", false, "list the scenario catalog and exit")
	flag.StringVar(&o.describe, "describe", "", "print a scenario's resolved spec and identity (catalog name or spec file)")
	flag.StringVar(&o.runRef, "run", "", "run a scenario end to end (catalog name or spec file)")
	flag.StringVar(&o.diff, "diff", "", "run two scenarios and diff their objective reports: -diff a,b")
	flag.StringVar(&o.out, "out", "", "archive directory for -run")
	flag.IntVar(&o.workers, "workers", 0, "simulation worker count (0 = all cores; the archive is identical for any value)")
	flag.Parse()
	if err := run(os.Stdout, o); err != nil {
		log.Fatal(err)
	}
}

// run executes one scenario invocation, writing human output to w.
func run(w io.Writer, o options) error {
	if err := o.validate(); err != nil {
		return err
	}
	switch {
	case o.list:
		return list(w)
	case o.describe != "":
		return describe(w, o.describe)
	case o.diff != "":
		parts := strings.Split(o.diff, ",")
		return diff(w, strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]), o.workers)
	default:
		return runScenario(w, o.runRef, o.out, o.workers)
	}
}

// list prints the catalog with each scenario's run dimensions.
func list(w io.Writer) error {
	for _, s := range scenario.Catalog() {
		src := s.Workload.Source
		if src == "" {
			src = scenario.SourceGenerator
		}
		fmt.Fprintf(w, "%-22s %4d nodes %9s  %-9s %s\n    %s\n",
			s.Name, s.Nodes, (time.Duration(s.DurationSec) * time.Second).String(),
			src, weatherLabel(s.Weather), s.Description)
	}
	return nil
}

func weatherLabel(weather string) string {
	if weather == "" {
		return scenario.WeatherWinter
	}
	return weather
}

// describe resolves ref and prints the spec, the derived identity and the
// trace-conversion stats.
func describe(w io.Writer, ref string) error {
	r, err := scenario.Resolve(ref)
	if err != nil {
		return err
	}
	raw, err := json.MarshalIndent(r.Spec, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s\n", raw)
	fmt.Fprintf(w, "hash %s  run seed %d\n", r.Identity(), r.Seed)
	fmt.Fprintf(w, "compiled: %d nodes, %s, start %d, %d explicit jobs\n",
		r.Config.Nodes, (time.Duration(r.Config.DurationSec) * time.Second).String(),
		r.Config.StartTime, len(r.Config.Workload))
	if st := r.TraceStats; st.Rows > 0 {
		fmt.Fprintf(w, "trace: %d rows -> %d jobs (%d zero-duration, %d beyond horizon), peak %d nodes, span %s\n",
			st.Rows, st.Jobs, st.ZeroDuration, st.BeyondHorizon, st.PeakNodes,
			(time.Duration(st.SpanSec) * time.Second).String())
	}
	return nil
}

// runScenario is the end-to-end path: simulate, archive, re-open the
// archive and assess it, leaving scenario.json and report.json beside the
// datasets.
func runScenario(w io.Writer, ref, out string, workers int) error {
	r, err := scenario.Resolve(ref)
	if err != nil {
		return err
	}
	start := time.Now() //lint:allow determinism wall-clock timing for the progress log only
	data, res, err := scenario.Run(r, workers)
	if err != nil {
		return err
	}
	if err := core.WriteDatasets(out, data); err != nil {
		return err
	}
	arch, err := source.OpenArchive(source.ArchiveConfig{Dir: out})
	if err != nil {
		return err
	}
	rep, err := r.Assess(arch, whatif.Weights{})
	if err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(out, "scenario.json"), runManifest(r)); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(out, "report.json"), rep); err != nil {
		return err
	}
	fmt.Fprintf(w, "scenario %s (hash %s, run seed %d)\n", r.Spec.Name, r.Identity(), r.Seed)
	fmt.Fprintf(w, "simulated %d windows on %d nodes: %d jobs, %d failures (%.1fs)\n",
		res.Steps, r.Config.Nodes, len(res.Allocations), len(res.Failures),
		time.Since(start).Seconds()) //lint:allow determinism wall-clock timing for the progress log only
	printReport(w, rep)
	fmt.Fprintf(w, "archive: %s (scenario.json, report.json alongside the datasets)\n", out)
	return nil
}

// manifest is the run provenance written next to the archive: the full
// spec plus the derived identity and trace stats.
type manifest struct {
	Spec    scenario.Spec  `json:"spec"`
	Hash    string         `json:"hash"`
	RunSeed uint64         `json:"run_seed"`
	Trace   *manifestTrace `json:"trace,omitempty"`
}

type manifestTrace struct {
	Rows          int   `json:"rows"`
	Jobs          int   `json:"jobs"`
	ZeroDuration  int   `json:"zero_duration"`
	BeyondHorizon int   `json:"beyond_horizon"`
	PeakNodes     int   `json:"peak_nodes"`
	SpanSec       int64 `json:"span_sec"`
}

func runManifest(r *scenario.Resolved) manifest {
	m := manifest{Spec: r.Spec, Hash: r.Identity(), RunSeed: r.Seed}
	if st := r.TraceStats; st.Rows > 0 {
		m.Trace = &manifestTrace{
			Rows: st.Rows, Jobs: st.Jobs, ZeroDuration: st.ZeroDuration,
			BeyondHorizon: st.BeyondHorizon, PeakNodes: st.PeakNodes, SpanSec: st.SpanSec,
		}
	}
	return m
}

// diff runs two scenarios and prints their objective reports side by side.
func diff(w io.Writer, refA, refB string, workers int) error {
	ra, err := scenario.Resolve(refA)
	if err != nil {
		return err
	}
	rb, err := scenario.Resolve(refB)
	if err != nil {
		return err
	}
	assess := func(r *scenario.Resolved) (whatif.Report, error) {
		data, _, err := scenario.Run(r, workers)
		if err != nil {
			return whatif.Report{}, err
		}
		return r.Assess(data.Source(), whatif.Weights{})
	}
	repA, err := assess(ra)
	if err != nil {
		return err
	}
	repB, err := assess(rb)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-24s %16s %16s %16s\n", "metric", ra.Spec.Name, rb.Spec.Name, "delta")
	for _, row := range []struct {
		name string
		a, b float64
	}{
		{"mean PUE", repA.MeanPUE, repB.MeanPUE},
		{"IT energy (MWh)", repA.ITEnergyMWh, repB.ITEnergyMWh},
		{"total energy (MWh)", repA.TotalEnergyMWh, repB.TotalEnergyMWh},
		{"violation (s)", repA.ViolationSec, repB.ViolationSec},
		{"violation (GPU·s)", repA.ViolationGPUSec, repB.ViolationGPUSec},
		{"overcooling (ton·h)", repA.OvercoolingTonH, repB.OvercoolingTonH},
		{"failures", float64(repA.Failures), float64(repB.Failures)},
		{"jobs completed", float64(repA.JobsCompleted), float64(repB.JobsCompleted)},
		{"utilization", repA.Utilization, repB.Utilization},
		{"score", repA.Score, repB.Score},
	} {
		fmt.Fprintf(w, "%-24s %16.4f %16.4f %+16.4f\n", row.name, row.a, row.b, row.b-row.a)
	}
	return nil
}

// printReport renders the objective block of one report.
func printReport(w io.Writer, rep whatif.Report) {
	fmt.Fprintf(w, "mean PUE %.4f, IT %.3f MWh, total %.3f MWh\n",
		rep.MeanPUE, rep.ITEnergyMWh, rep.TotalEnergyMWh)
	fmt.Fprintf(w, "violation %.0f s (%.0f GPU·s), overcooling %.1f ton·h\n",
		rep.ViolationSec, rep.ViolationGPUSec, rep.OvercoolingTonH)
	fmt.Fprintf(w, "%d failures, %d jobs completed, utilization %.1f%%, score %.3f\n",
		rep.Failures, rep.JobsCompleted, rep.Utilization*100, rep.Score)
}

// writeJSON writes v to path as indented JSON with a trailing newline.
func writeJSON(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
