// Command reprolint runs the repository's static-analysis suite (see
// internal/lint) over module packages and exits non-zero on any violation.
// It is the multichecker `make ci` runs; stock `go vet` runs alongside it
// in the same CI target, covering the standard passes.
//
// Usage:
//
//	reprolint [-analyzers list] [-list] [packages ...]
//
// Package patterns are directories relative to the working directory, with
// ./... expansion; the default is ./... . Intentional exceptions are
// annotated at the offending line:
//
//	//lint:allow <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reprolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list  = fs.Bool("list", false, "list analyzers and exit")
		names = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := lint.All()
	if *names != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*names, ","))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags, err := lint.LintPackages(cwd, fs.Args(), analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, relativize(cwd, d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "reprolint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// relativize shortens absolute diagnostic paths to the working directory
// for readable, clickable output.
func relativize(cwd string, d lint.Diagnostic) string {
	s := d.String()
	if rel, ok := strings.CutPrefix(s, cwd+string(os.PathSeparator)); ok {
		return rel
	}
	return s
}
