// Command reprolint runs the repository's static-analysis suite (see
// internal/lint) over module packages: five per-package analyzers plus four
// whole-program analyzers that work over the cross-package call graph. It
// is the multichecker `make ci` runs; stock `go vet` runs alongside it in
// the same CI target, covering the standard passes.
//
// Usage:
//
//	reprolint [-analyzers list] [-json|-sarif] [-baseline file]
//	          [-write-baseline] [-list] [packages ...]
//
// Package patterns are directories relative to the working directory, with
// ./... expansion; the default is ./... . Intentional exceptions are
// annotated at the offending line:
//
//	//lint:allow <analyzer> <reason>
//
// Known-but-unfixed findings can instead be grandfathered in a baseline
// file (default .reprolint-baseline.json, matched on analyzer + file +
// message, never line numbers); -write-baseline regenerates it from the
// current findings. Exit codes: 0 clean, 1 violations, 2 load or usage
// error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reprolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list analyzers and exit")
		names    = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		asJSON   = fs.Bool("json", false, "emit diagnostics as JSON")
		asSARIF  = fs.Bool("sarif", false, "emit diagnostics as SARIF 2.1.0")
		baseline = fs.String("baseline", ".reprolint-baseline.json",
			"baseline file of grandfathered findings (missing file = empty)")
		writeBaseline = fs.Bool("write-baseline", false,
			"write current findings to the baseline file and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		for _, a := range lint.ProgramAnalyzers() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *asJSON && *asSARIF {
		fmt.Fprintln(stderr, "reprolint: -json and -sarif are mutually exclusive")
		return 2
	}
	analyzers, progAnalyzers := lint.All(), lint.ProgramAnalyzers()
	if *names != "" {
		var err error
		analyzers, progAnalyzers, err = lint.ByName(strings.Split(*names, ","))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags, err := lint.LintPackages(cwd, fs.Args(), analyzers, progAnalyzers)
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}
	if *writeBaseline {
		if err := lint.WriteBaseline(*baseline, diags, cwd); err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "reprolint: wrote %d finding(s) to %s\n", len(diags), *baseline)
		return 0
	}
	bl, err := lint.ReadBaseline(*baseline)
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}
	diags, stale := bl.Filter(diags, cwd)
	for _, e := range stale {
		fmt.Fprintf(stderr, "reprolint: stale baseline entry (finding fixed — delete it): %s %s: %s\n",
			e.File, e.Analyzer, e.Message)
	}
	switch {
	case *asJSON:
		if err := lint.EncodeJSON(stdout, diags, cwd); err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
	case *asSARIF:
		if err := lint.EncodeSARIF(stdout, diags, cwd); err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, relativize(cwd, d))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "reprolint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// relativize shortens absolute diagnostic paths to the working directory
// for readable, clickable output.
func relativize(cwd string, d lint.Diagnostic) string {
	prefix := cwd + string(os.PathSeparator)
	s := d.String()
	s = strings.ReplaceAll(s, "\n\t"+prefix, "\n\t") // notes embed paths too
	if rel, ok := strings.CutPrefix(s, prefix); ok {
		return rel
	}
	return s
}
