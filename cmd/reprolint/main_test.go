package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/lint"
)

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run -list = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	for _, name := range lint.AllNames() {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestUnknownAnalyzerFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run -analyzers nope = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing explanation: %s", stderr.String())
	}
}

// TestRepoIsLintClean is the merge gate in test form: the whole module must
// be violation-free under the full suite, matching what `make lint` runs.
func TestRepoIsLintClean(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.LintPackages(loader.ModuleDir(), nil, lint.All(), lint.ProgramAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
