// Command optimize runs the what-if control plane: it sweeps plant and
// scheduler knobs over deterministic batch evaluations of the twin and
// reports the best operating point, per-knob sensitivities and the
// energy/violation Pareto frontier.
//
// Usage:
//
//	optimize -list
//	optimize -study heatwave-setpoint [-strategy grid|cd|cem]
//	         [-workers N] [-seed S] [-out sweep.json]
//	optimize -study heatwave-setpoint -scenarios points.json
//
// A sweep is bit-reproducible for any -workers value: every scenario's
// run seed derives from the base seed and the scenario's canonical hash,
// so the -out sweep log is a stable artifact (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/whatif"
)

// options carries the parsed flag surface so run is testable.
type options struct {
	list      bool
	study     string
	scenario  string // base-scenario override: catalog name or spec file
	strategy  string
	scenarios string // path to a scenario-list JSON file (skips search)
	workers   int
	rounds    int // coordinate-descent rounds
	pop       int // CEM population
	elite     int // CEM elites
	iters     int // CEM iterations
	seed      uint64
	out       string
	indep     bool
	keepFail  bool
}

// validate rejects inconsistent flag combinations before any simulation
// runs, mirroring the config-level validation in sim and whatif.
func (o options) validate() error {
	switch o.strategy {
	case "grid", "cd", "cem":
	default:
		return fmt.Errorf("unknown -strategy %q (grid|cd|cem)", o.strategy)
	}
	if o.workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", o.workers)
	}
	if o.rounds < 0 {
		return fmt.Errorf("-rounds must be >= 0, got %d", o.rounds)
	}
	if o.pop < 0 || o.elite < 0 || o.iters < 0 {
		return fmt.Errorf("CEM sizes must be >= 0, got -pop %d -elite %d -iters %d",
			o.pop, o.elite, o.iters)
	}
	if o.elite > o.pop && o.pop > 0 {
		return fmt.Errorf("-elite %d exceeds -pop %d", o.elite, o.pop)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("optimize: ")
	var o options
	flag.BoolVar(&o.list, "list", false, "list the study catalog and exit")
	flag.StringVar(&o.study, "study", "heatwave-setpoint", "catalog study to run (see -list)")
	flag.StringVar(&o.scenario, "scenario", "",
		"override the study's base scenario: a scenario-catalog name or a spec JSON file")
	flag.StringVar(&o.strategy, "strategy", "grid", "search strategy: grid|cd|cem")
	flag.StringVar(&o.scenarios, "scenarios", "", "JSON file with explicit scenarios to evaluate (skips search)")
	flag.IntVar(&o.workers, "workers", 0, "scenario-level parallelism (0 = all cores)")
	flag.IntVar(&o.rounds, "rounds", 0, "coordinate-descent rounds (0 = default)")
	flag.IntVar(&o.pop, "pop", 0, "CEM population per iteration (0 = default)")
	flag.IntVar(&o.elite, "elite", 0, "CEM elite count (0 = default)")
	flag.IntVar(&o.iters, "iters", 0, "CEM iterations (0 = default)")
	flag.Uint64Var(&o.seed, "seed", 0, "override the study's base seed (0 = keep)")
	flag.StringVar(&o.out, "out", "", "write the machine-readable sweep log to this file")
	flag.BoolVar(&o.indep, "independent-streams", false,
		"give each scenario independent weather/workload streams instead of paired runs")
	flag.BoolVar(&o.keepFail, "keep-failures", false, "retain failure injection during sweeps")
	flag.Parse()
	if err := run(os.Stdout, o); err != nil {
		log.Fatal(err)
	}
}

// run executes one optimize invocation, writing human output to w.
func run(w io.Writer, o options) error {
	if o.list {
		return listStudies(w)
	}
	if err := o.validate(); err != nil {
		return err
	}
	study, err := whatif.StudyByName(o.study)
	if err != nil {
		return err
	}
	// Studies reference their base by scenario-catalog name (or any
	// -scenario name/file override): resolve it to a sim.Config here —
	// optimize sits above both planes in the dependency order.
	baseRef := study.Scenario
	if o.scenario != "" {
		baseRef = o.scenario
	}
	resolved, err := scenario.Resolve(baseRef)
	if err != nil {
		return err
	}
	base := resolved.Config
	if o.seed != 0 {
		base.Seed = o.seed
	}
	opt := whatif.Options{
		Workers:            o.workers,
		IndependentStreams: o.indep,
		KeepFailures:       o.keepFail,
	}
	start := time.Now() //lint:allow determinism wall-clock timing for the progress log only
	var res *whatif.SweepResult
	switch {
	case o.scenarios != "":
		res, err = evaluateFile(base, o.scenarios, opt)
	case o.strategy == "grid":
		res, err = whatif.RunGrid(base, study.Axes, opt)
	case o.strategy == "cd":
		res, err = whatif.RunCoordinateDescent(base, study.Axes, o.rounds, opt)
	default: // cem — validate() already rejected anything else
		cem := whatif.CEMConfig{Population: o.pop, Elite: o.elite, Iterations: o.iters}
		res, err = whatif.RunCEM(base, study.Axes, cem, opt)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start) //lint:allow determinism wall-clock timing for the progress log only
	fmt.Fprintf(w, "study %s (base seed %d)\n%s", study.Name, base.Seed, res.Summary())
	rate := float64(len(res.Evaluated)) / elapsed.Seconds()
	fmt.Fprintf(w, "%d evaluations in %.1fs (%.1f runs/sec)\n",
		len(res.Evaluated), elapsed.Seconds(), rate)
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		if err := res.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "sweep log: %s\n", o.out)
	}
	return nil
}

// evaluateFile scores an explicit scenario list (the declarative JSON
// schema from EXPERIMENTS.md) against the study base, prepending the
// nominal baseline.
func evaluateFile(base sim.Config, path string, opt whatif.Options) (*whatif.SweepResult, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var scns []whatif.Scenario
	if err := json.Unmarshal(raw, &scns); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(scns) == 0 {
		return nil, fmt.Errorf("%s holds no scenarios", path)
	}
	all := append([]whatif.Scenario{{Name: "nominal"}}, scns...)
	reports, err := whatif.Evaluate(base, all, opt)
	if err != nil {
		return nil, err
	}
	res := &whatif.SweepResult{
		Strategy:  "file",
		BaseSeed:  base.Seed,
		Evaluated: reports,
		Baseline:  reports[0],
		Best:      reports[0],
		Pareto:    whatif.ParetoFront(reports),
	}
	for _, r := range reports[1:] {
		if r.Score < res.Best.Score {
			res.Best = r
		}
	}
	return res, nil
}

// listStudies prints the catalog, resolving each study's base scenario for
// its dimensions.
func listStudies(w io.Writer) error {
	for _, s := range whatif.Catalog() {
		points := 1
		for _, ax := range s.Axes {
			points *= len(ax.Values)
		}
		spec, err := scenario.ByName(s.Scenario)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-20s %4d grid points, %d nodes, %s (scenario %s)\n    %s\n",
			s.Name, points, spec.Nodes,
			(time.Duration(spec.DurationSec) * time.Second).String(),
			s.Scenario, s.Description)
	}
	return nil
}
