package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOptionsValidate(t *testing.T) {
	ok := options{strategy: "grid"}
	if err := ok.validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	bad := []options{
		{strategy: "anneal"},
		{strategy: "grid", workers: -1},
		{strategy: "cd", rounds: -2},
		{strategy: "cem", pop: -1},
		{strategy: "cem", pop: 4, elite: 8},
	}
	for i, o := range bad {
		if err := o.validate(); err == nil {
			t.Errorf("case %d: invalid options %+v accepted", i, o)
		}
	}
}

func TestListStudies(t *testing.T) {
	var b strings.Builder
	if err := run(&b, options{list: true}); err != nil {
		t.Fatalf("run(-list): %v", err)
	}
	out := b.String()
	for _, want := range []string{"heatwave-setpoint", "winter-economizer", "cap-placement"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing study %q:\n%s", want, out)
		}
	}
}

func TestRunUnknownStudy(t *testing.T) {
	err := run(&strings.Builder{}, options{study: "no-such", strategy: "grid"})
	if err == nil || !strings.Contains(err.Error(), "unknown study") {
		t.Errorf("unknown study err = %v", err)
	}
}

func TestRunScenarioFile(t *testing.T) {
	dir := t.TempDir()
	scns := filepath.Join(dir, "points.json")
	body := `[
	  {"name": "warm-water", "params": {"supply_setpoint_c": 24}},
	  {"params": {"supply_setpoint_c": 18}, "cap_schedule": [{"after_sec": 1800, "cap_w": 150000}]}
	]`
	if err := os.WriteFile(scns, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "sweep.json")
	var b strings.Builder
	o := options{
		study: "heatwave-setpoint", strategy: "grid",
		scenarios: scns, out: out, workers: 2,
	}
	// The scenario file skips the search, so only 3 runs execute — but
	// they still use the study's 12 h base; keep this as the one slow-ish
	// CLI test.
	if err := run(&b, o); err != nil {
		t.Fatalf("run(-scenarios): %v", err)
	}
	text := b.String()
	if !strings.Contains(text, "warm-water") || !strings.Contains(text, "baseline") {
		t.Errorf("summary missing expected lines:\n%s", text)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("sweep log not written: %v", err)
	}
	for _, want := range []string{`"strategy": "file"`, `"warm-water"`, `"cap_schedule"`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("sweep log missing %s", want)
		}
	}
}

func TestRunScenarioFileErrors(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`[]`), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []options{
		{study: "heatwave-setpoint", strategy: "grid", scenarios: filepath.Join(dir, "absent.json")},
		{study: "heatwave-setpoint", strategy: "grid", scenarios: empty},
	}
	for i, o := range cases {
		if err := run(&strings.Builder{}, o); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
