package main

import (
	"os"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/source"
)

// testArchive builds one archive shared by the analyze subcommand tests.
var archiveDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "analyze-test-*")
	if err != nil {
		panic(err)
	}
	cfg := repro.ScaledConfig(36, time.Hour)
	data, _, err := repro.Simulate(cfg)
	if err != nil {
		panic(err)
	}
	if err := core.WriteDatasets(dir, data); err != nil {
		panic(err)
	}
	archiveDir = dir
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func openTestArchive(t *testing.T) source.RunSource {
	t.Helper()
	src, err := source.OpenArchive(source.ArchiveConfig{Dir: archiveDir})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestDispatchSubcommands(t *testing.T) {
	src := openTestArchive(t)
	cases := []struct {
		cmd  string
		want string
	}{
		{"summary", "sum_inp"},
		{"edges", "edges at threshold"},
		{"fft", "dominant swing"},
		{"failures", "Memory page fault"},
		{"jobs", "jobs total"},
		{"bands", "<30°C"},
		{"earlywarning", "precursor"},
		{"validation", "relative error"},
		{"overcooling", "excess cooling"},
	}
	for _, c := range cases {
		var b strings.Builder
		if err := dispatch(&b, c.cmd, src); err != nil {
			t.Errorf("%s: %v", c.cmd, err)
			continue
		}
		if !strings.Contains(b.String(), c.want) {
			t.Errorf("%s output missing %q:\n%s", c.cmd, c.want, b.String())
		}
	}
}

func TestDispatchUnknownAndMissing(t *testing.T) {
	var b strings.Builder
	if err := dispatch(&b, "nope", openTestArchive(t)); err == nil {
		t.Error("unknown command accepted")
	}
	if _, err := source.OpenArchive(source.ArchiveConfig{Dir: t.TempDir()}); err == nil {
		t.Error("missing archive accepted")
	}
}
