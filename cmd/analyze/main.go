// Command analyze runs ad-hoc analyses over an archived run produced by
// summitsim (or `repro -data`). Every subcommand consumes the archive
// through the source.RunSource layer — the same entry points the in-memory
// pipeline and queryd use — so results match the live data plane exactly.
//
// -data may also name a fleet root (as written by summitsim -clusters);
// -cluster selects the member to analyze. With -shards N the archive is
// read through an N-shard federated source instead of directly — output is
// bit-identical either way (the federation layer's parity guarantee).
//
// Usage:
//
//	analyze -data /path/to/archive [-cluster NAME] [-shards N]
//	        [-cmd summary|edges|fft|failures|jobs|bands|earlywarning|validation|overcooling]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/render"
	"repro/internal/source"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analyze: ")
	dataDir := flag.String("data", "", "archive or fleet directory (required)")
	cmd := flag.String("cmd", "summary",
		"analysis: summary|edges|fft|failures|jobs|bands|earlywarning|validation|overcooling")
	cluster := flag.String("cluster", "", "fleet member to analyze (when -data is a fleet root)")
	shards := flag.Int("shards", 1, "read through an N-shard federated source (1 = direct)")
	nodes := flag.Int("nodes", 256, "system size fallback for archives without a run manifest")
	step := flag.Int64("step", 10, "coarsening window fallback for archives without a run manifest")
	flag.Parse()
	if *dataDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *nodes <= 0 {
		log.Fatalf("-nodes must be positive, got %d", *nodes)
	}
	if *step <= 0 {
		log.Fatalf("-step must be positive, got %d", *step)
	}
	if *shards < 1 {
		log.Fatalf("-shards must be >= 1, got %d", *shards)
	}
	dir, err := resolveDir(*dataDir, *cluster)
	if err != nil {
		log.Fatal(err)
	}
	src, err := openSource(dir, *shards, *step, *nodes)
	if err != nil {
		log.Fatal(err)
	}
	if err := dispatch(os.Stdout, *cmd, src); err != nil {
		log.Fatal(err)
	}
}

// resolveDir maps -data/-cluster to the archive directory to open. A fleet
// root demands -cluster; a plain archive rejects it.
func resolveDir(dataDir, cluster string) (string, error) {
	manifest, err := source.DiscoverFleet(dataDir)
	if errors.Is(err, source.ErrNotFleet) {
		if cluster != "" {
			return "", fmt.Errorf("-cluster %q given but %s is not a fleet root", cluster, dataDir)
		}
		return dataDir, nil
	}
	if err != nil {
		return "", err
	}
	if cluster == "" {
		return "", fmt.Errorf("%s is a fleet root; pick a member with -cluster (one of: %s)",
			dataDir, strings.Join(manifest.Names(), ", "))
	}
	entry, ok := manifest.Find(cluster)
	if !ok {
		return "", fmt.Errorf("no cluster %q in fleet (have: %s)",
			cluster, strings.Join(manifest.Names(), ", "))
	}
	return entry.Path(dataDir), nil
}

// openSource opens the archive directly, or through a sharded federated
// coordinator when shards > 1.
func openSource(dir string, shards int, step int64, nodes int) (source.RunSource, error) {
	acfg := source.ArchiveConfig{Dir: dir, StepSec: step, Nodes: nodes}
	if shards == 1 {
		return source.OpenArchive(acfg)
	}
	return source.OpenShardedArchive(source.ShardedArchiveConfig{
		Archive: acfg,
		Shards:  shards,
	})
}

// dispatch routes a subcommand to its analysis, writing to w.
func dispatch(w io.Writer, cmd string, src source.RunSource) error {
	switch cmd {
	case "summary":
		return summary(w, src)
	case "edges":
		return edges(w, src)
	case "fft":
		return fft(w, src)
	case "failures":
		return failureAnalysis(w, src)
	case "jobs":
		return jobAnalysis(w, src)
	case "bands":
		return bandAnalysis(w, src)
	case "earlywarning":
		return earlyWarningAnalysis(w, src)
	case "validation":
		return validationAnalysis(w, src)
	case "overcooling":
		return overcoolingAnalysis(w, src)
	default:
		return fmt.Errorf("unknown -cmd %q", cmd)
	}
}

func summary(w io.Writer, src source.RunSource) error {
	rows, err := core.SummaryFromSource(src)
	if err != nil {
		return err
	}
	tab := render.NewTable("series", "windows", "min", "mean", "max", "std")
	for _, r := range rows {
		tab.Row(r.Name, r.N, r.Min, r.Mean, r.Max, r.Std)
	}
	_, err = tab.WriteTo(w)
	return err
}

func edges(w io.Writer, src source.RunSource) error {
	es, err := core.EdgesFromSource(src)
	if err != nil {
		return err
	}
	meta, err := src.Meta()
	if err != nil {
		return err
	}
	tab := render.NewTable("t", "direction", "amplitude (MW)", "duration (s)")
	for _, e := range es {
		dir := "rise"
		if !e.Rising {
			dir = "fall"
		}
		tab.Row(e.T, dir, e.AmplitudeW/units.WattsPerMW, e.DurationSec)
	}
	if _, err := tab.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "%d edges at threshold %.2f MW\n",
		len(es), core.ClusterEdgeThresholdMW(meta.Nodes))
	return nil
}

func fft(w io.Writer, src source.RunSource) error {
	rep, err := core.SwingsFromSource(src)
	if err != nil {
		return err
	}
	if !rep.HasDominant {
		return fmt.Errorf("series too short for FFT")
	}
	fmt.Fprintf(w, "steepest swings: +%.2f MW / %.2f MW per window\n",
		rep.MaxRiseW/units.WattsPerMW, rep.MaxFallW/units.WattsPerMW)
	fmt.Fprintf(w, "dominant swing: %.5f Hz (period %.0f s), amplitude %.2f MW\n",
		rep.DominantFreqHz, 1/rep.DominantFreqHz, rep.DominantAmpW/units.WattsPerMW)
	tab := render.NewTable("rank", "freq (Hz)", "period (s)", "amplitude (W)")
	for i, c := range rep.Top {
		tab.Row(i+1, c.FreqHz, c.PeriodSec, c.AmplitudeW)
	}
	_, err = tab.WriteTo(w)
	return err
}

func failureAnalysis(w io.Writer, src source.RunSource) error {
	rows, err := core.FailureCompositionFromSource(src)
	if err != nil {
		return err
	}
	tab := render.NewTable("GPU error", "count", "max/node", "max/node %")
	for _, r := range rows {
		tab.Row(r.Type.String(), r.Count, r.MaxPerNode,
			fmt.Sprintf("%.1f%%", r.MaxPerNodeFrac*100))
	}
	if _, err := tab.WriteTo(w); err != nil {
		return err
	}
	cells, err := core.FailureCorrelationFromSource(src, 0.05)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%d Bonferroni-significant co-occurrence pairs:\n", len(cells))
	ctab := render.NewTable("type A", "type B", "r")
	for _, c := range cells {
		ctab.Row(c.A.String(), c.B.String(), c.R)
	}
	if _, err := ctab.WriteTo(w); err != nil {
		return err
	}
	// Thermal context coverage.
	evs, err := src.Failures()
	if err != nil {
		return err
	}
	withTemp := 0
	for _, e := range evs {
		if e.HasTemp() {
			withTemp++
		}
	}
	if len(evs) > 0 {
		fmt.Fprintf(w, "\nthermal context present on %.1f%% of %d events\n",
			100*float64(withTemp)/float64(len(evs)), len(evs))
	}
	return nil
}

func jobAnalysis(w io.Writer, src source.RunSource) error {
	rows, err := src.JobRecords()
	if err != nil {
		return err
	}
	// Top 20 by energy.
	sortRows := append([]source.JobRecord(nil), rows...)
	for i := 1; i < len(sortRows); i++ {
		for j := i; j > 0 && sortRows[j].EnergyJ > sortRows[j-1].EnergyJ; j-- {
			sortRows[j], sortRows[j-1] = sortRows[j-1], sortRows[j]
		}
	}
	tab := render.NewTable("allocation", "class", "nodes", "hours", "mean (kW)", "max (kW)", "energy (kWh)")
	for i, r := range sortRows {
		if i == 20 {
			break
		}
		tab.Row(r.AllocationID, r.Class, r.Nodes,
			float64(r.EndTime-r.BeginTime)/units.SecondsPerHour, r.MeanPowerW/units.WattsPerKW,
			r.MaxPowerW/units.WattsPerKW, r.EnergyJ/units.JoulesPerKWh)
	}
	if _, err := tab.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "%d jobs total\n", len(rows))
	return nil
}

func bandAnalysis(w io.Writer, src source.RunSource) error {
	rows, err := core.ThermalBandsFromSource(src)
	if err != nil {
		if errors.Is(err, source.ErrUnknownSeries) {
			return fmt.Errorf("archive has no band columns (re-archive with a current build)")
		}
		return err
	}
	tab := render.NewTable("band", "mean GPUs", "max GPUs", "mean share")
	for _, r := range rows {
		tab.Row(r.Label, r.MeanGPUs, r.MaxGPUs, fmt.Sprintf("%.1f%%", r.MeanShare*100))
	}
	_, err = tab.WriteTo(w)
	return err
}

func earlyWarningAnalysis(w io.Writer, src source.RunSource) error {
	stats, err := core.EarlyWarningFromSource(src, units.SecondsPerHour)
	if err != nil {
		return err
	}
	tab := render.NewTable("precursor", "outcome", "precursors", "hit rate", "base rate", "lift", "median lead (s)")
	for _, st := range stats {
		tab.Row(st.Precursor.String(), st.Outcome.String(), st.Precursors,
			st.HitRate, st.BaseRate, st.Lift, st.MedianLeadSec)
	}
	_, err = tab.WriteTo(w)
	return err
}

func validationAnalysis(w io.Writer, src source.RunSource) error {
	rep, err := core.ValidationFromSource(src)
	if err != nil {
		return err
	}
	tab := render.NewTable("MSB", "windows", "mean diff (kW)", "std (kW)", "corr", "meter mean (kW)", "sum mean (kW)")
	for _, m := range rep.PerMSB {
		tab.Row(m.MSB, m.N, m.MeanDiffW/units.WattsPerKW, m.StdDiffW/units.WattsPerKW, m.Corr,
			m.MeanMeterW/units.WattsPerKW, m.MeanSumW/units.WattsPerKW)
	}
	if _, err := tab.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "mean difference %.2f kW, relative error %.2f%%\n",
		rep.MeanDiffAllW/units.WattsPerKW, rep.RelativeError*100)
	return nil
}

func overcoolingAnalysis(w io.Writer, src source.RunSource) error {
	rep, err := core.OvercoolingFromSource(src)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "windows analyzed:   %d\n", rep.Windows)
	fmt.Fprintf(w, "excess cooling:     %.1f ton-hours (%.1f%% of delivered)\n",
		rep.ExcessTonHours, rep.ExcessFrac*100)
	fmt.Fprintf(w, "deficit (transient): %.1f ton-hours\n", rep.DeficitTonHours)
	fmt.Fprintf(w, "excess energy cost: %.1f kWh\n", rep.ExcessEnergyKWh)
	fmt.Fprintf(w, "post-fall share:    %.1f%% within 10 min of falling edges\n",
		rep.PostFallShare*100)
	return nil
}
