// Command analyze runs ad-hoc analyses over an archived run produced by
// summitsim (or `repro -data`): cluster power summary, edge detection,
// FFT swing characterization, and the failure-log analyses.
//
// Usage:
//
//	analyze -data /path/to/archive [-cmd summary|edges|fft|failures] [-nodes N]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/failures"
	"repro/internal/render"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analyze: ")
	dataDir := flag.String("data", "", "archive directory (required)")
	cmd := flag.String("cmd", "summary", "analysis: summary|edges|fft|failures|jobs|bands|earlywarning")
	nodes := flag.Int("nodes", 256, "system size the archive was produced with (for edge thresholds)")
	step := flag.Int64("step", 10, "coarsening window of the archive in seconds")
	flag.Parse()
	if *dataDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := dispatch(os.Stdout, *cmd, *dataDir, *step, *nodes); err != nil {
		log.Fatal(err)
	}
}

// dispatch routes a subcommand to its analysis, writing to w.
func dispatch(w io.Writer, cmd, dataDir string, step int64, nodes int) error {
	switch cmd {
	case "summary":
		return summary(w, dataDir, step)
	case "edges":
		return edges(w, dataDir, step, nodes)
	case "fft":
		return fft(w, dataDir, step)
	case "failures":
		return failureAnalysis(w, dataDir, nodes)
	case "jobs":
		return jobAnalysis(w, dataDir)
	case "bands":
		return bandAnalysis(w, dataDir, step, nodes)
	case "earlywarning":
		return earlyWarningAnalysis(w, dataDir, nodes)
	default:
		return fmt.Errorf("unknown -cmd %q", cmd)
	}
}

func summary(w io.Writer, dataDir string, step int64) error {
	series, err := core.ReadClusterDataset(dataDir, step)
	if err != nil {
		return err
	}
	tab := render.NewTable("series", "windows", "min", "mean", "max", "std")
	names := []string{"sum_inp", "cpu_power", "gpu_power", "pue", "mtwst", "mtwrt",
		"tower_tons", "chiller_tons", "gpu_core_temp_mean", "gpu_core_temp_max"}
	for _, name := range names {
		s, ok := series[name]
		if !ok {
			continue
		}
		m := s.Stats()
		tab.Row(name, m.N, m.Min, m.Mean(), m.Max, m.Std())
	}
	_, err = tab.WriteTo(w)
	return err
}

func edges(w io.Writer, dataDir string, step int64, nodes int) error {
	series, err := core.ReadClusterDataset(dataDir, step)
	if err != nil {
		return err
	}
	power, ok := series["sum_inp"]
	if !ok {
		return fmt.Errorf("archive has no sum_inp series")
	}
	es := core.DetectEdges(power, nodes)
	tab := render.NewTable("t", "direction", "amplitude (MW)", "duration (s)")
	for _, e := range es {
		dir := "rise"
		if !e.Rising {
			dir = "fall"
		}
		tab.Row(e.T, dir, e.AmplitudeW/1e6, e.DurationSec)
	}
	if _, err := tab.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "%d edges at threshold %.2f MW\n", len(es), core.ClusterEdgeThresholdMW(nodes))
	return nil
}

func fft(w io.Writer, dataDir string, step int64) error {
	series, err := core.ReadClusterDataset(dataDir, step)
	if err != nil {
		return err
	}
	power, ok := series["sum_inp"]
	if !ok {
		return fmt.Errorf("archive has no sum_inp series")
	}
	vals := power.Clean()
	freq, amp, ok := dsp.DominantSwing(vals, 1/float64(step))
	if !ok {
		return fmt.Errorf("series too short for FFT")
	}
	fmt.Fprintf(w, "dominant swing: %.5f Hz (period %.0f s), amplitude %.2f MW\n",
		freq, 1/freq, amp/1e6)
	// Top-5 spectral components of the differenced series.
	spec, err := dsp.NewSpectrum(dsp.Diff(vals), 1/float64(step))
	if err != nil {
		return err
	}
	type comp struct{ f, a float64 }
	best := make([]comp, 0, 5)
	for i, a := range spec.Amps {
		best = append(best, comp{spec.Freqs[i], a})
	}
	// Partial selection of the 5 largest amplitudes.
	for i := 0; i < 5 && i < len(best); i++ {
		maxJ := i
		for j := i + 1; j < len(best); j++ {
			if best[j].a > best[maxJ].a {
				maxJ = j
			}
		}
		best[i], best[maxJ] = best[maxJ], best[i]
	}
	tab := render.NewTable("rank", "freq (Hz)", "period (s)", "amplitude (W)")
	for i := 0; i < 5 && i < len(best); i++ {
		period := math.Inf(1)
		if best[i].f > 0 {
			period = 1 / best[i].f
		}
		tab.Row(i+1, best[i].f, period, best[i].a)
	}
	_, err = tab.WriteTo(w)
	return err
}

func failureAnalysis(w io.Writer, dataDir string, nodes int) error {
	evs, err := core.ReadFailureDataset(dataDir)
	if err != nil {
		return err
	}
	rows := core.Table4Composition(evs, nodes)
	tab := render.NewTable("GPU error", "count", "max/node", "max/node %")
	for _, r := range rows {
		tab.Row(r.Type.String(), r.Count, r.MaxPerNode,
			fmt.Sprintf("%.1f%%", r.MaxPerNodeFrac*100))
	}
	if _, err := tab.WriteTo(w); err != nil {
		return err
	}
	cells, err := core.Figure13Correlation(evs, nodes, 0.05)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%d Bonferroni-significant co-occurrence pairs:\n", len(cells))
	ctab := render.NewTable("type A", "type B", "r")
	for _, c := range cells {
		ctab.Row(c.A.String(), c.B.String(), c.R)
	}
	if _, err := ctab.WriteTo(w); err != nil {
		return err
	}
	// Thermal context coverage.
	withTemp := 0
	for _, e := range evs {
		if e.HasTemp() {
			withTemp++
		}
	}
	if len(evs) > 0 {
		fmt.Fprintf(w, "\nthermal context present on %.1f%% of %d events\n",
			100*float64(withTemp)/float64(len(evs)), len(evs))
	}
	return nil
}

func jobAnalysis(w io.Writer, dataDir string) error {
	rows, err := core.ReadJobDataset(dataDir)
	if err != nil {
		return err
	}
	// Top 20 by energy.
	sortRows := append([]core.JobDatasetRow(nil), rows...)
	for i := 1; i < len(sortRows); i++ {
		for j := i; j > 0 && sortRows[j].EnergyJ > sortRows[j-1].EnergyJ; j-- {
			sortRows[j], sortRows[j-1] = sortRows[j-1], sortRows[j]
		}
	}
	tab := render.NewTable("allocation", "class", "nodes", "hours", "mean (kW)", "max (kW)", "energy (kWh)")
	for i, r := range sortRows {
		if i == 20 {
			break
		}
		tab.Row(r.AllocationID, r.Class, r.Nodes,
			float64(r.EndTime-r.BeginTime)/3600, r.MeanPowerW/1e3,
			r.MaxPowerW/1e3, r.EnergyJ/3.6e6)
	}
	if _, err := tab.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "%d jobs total\n", len(rows))
	return nil
}

func bandAnalysis(w io.Writer, dataDir string, step int64, nodes int) error {
	series, err := core.ReadClusterDataset(dataDir, step)
	if err != nil {
		return err
	}
	tab := render.NewTable("band", "mean GPUs", "max GPUs", "mean share")
	totalGPUs := float64(nodes * 6)
	found := false
	for b := 0; b < core.NumTempBands; b++ {
		s, ok := series[fmt.Sprintf("gpu_band_%d", b)]
		if !ok {
			continue
		}
		found = true
		m := s.Stats()
		share := 0.0
		if totalGPUs > 0 {
			share = m.Mean() / totalGPUs
		}
		tab.Row(core.TempBandLabel(b), m.Mean(), m.Max, fmt.Sprintf("%.1f%%", share*100))
	}
	if !found {
		return fmt.Errorf("archive has no band columns (re-archive with a current build)")
	}
	_, err = tab.WriteTo(w)
	return err
}

func earlyWarningAnalysis(w io.Writer, dataDir string, nodes int) error {
	evs, err := core.ReadFailureDataset(dataDir)
	if err != nil {
		return err
	}
	if len(evs) == 0 {
		return fmt.Errorf("failure log empty")
	}
	// Observation span from the log extents; one-hour windows.
	lo, hi := evs[0].Time, evs[0].Time
	for _, e := range evs {
		if e.Time < lo {
			lo = e.Time
		}
		if e.Time > hi {
			hi = e.Time
		}
	}
	const windowSec = 3600
	spanSec := hi - lo + windowSec
	gpuWindows := float64(nodes*6) * float64(spanSec) / windowSec
	pairs := [][2]failures.Type{
		{failures.MicrocontrollerWarning, failures.DriverErrorHandling},
		{failures.DoubleBitError, failures.PageRetirementEvent},
		{failures.PageRetirementEvent, failures.PageRetirementFailure},
	}
	tab := render.NewTable("precursor", "outcome", "precursors", "hit rate", "base rate", "lift", "median lead (s)")
	for _, pr := range pairs {
		st, err := core.EarlyWarning(evs, pr[0], pr[1], windowSec, gpuWindows)
		if err != nil {
			return err
		}
		tab.Row(st.Precursor.String(), st.Outcome.String(), st.Precursors,
			st.HitRate, st.BaseRate, st.Lift, st.MedianLeadSec)
	}
	_, err = tab.WriteTo(w)
	return err
}
