package repro

// Benchmark harness: one benchmark per paper table/figure (regenerating the
// experiment's data from a shared simulated run), plus simulator and
// substrate benchmarks and the ablation sweeps called out in DESIGN.md.
//
// Run with: go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/store"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/tsagg"
)

var (
	benchOnce sync.Once
	benchData *RunData
	benchVC   *core.VariabilityCollector
	benchErr  error
)

// benchRun builds one shared scaled run for all analysis benchmarks so
// each benchmark measures experiment regeneration, not simulation.
func benchRun(b *testing.B) (*RunData, *core.VariabilityCollector) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := ScaledConfig(128, 6*time.Hour)
		benchData, benchVC, _, benchErr = SimulateWithVariability(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchData, benchVC
}

func BenchmarkSimulateDay(b *testing.B) {
	// The digital twin itself: one simulated hour on 64 nodes per
	// iteration (≈360 windows × 64 nodes × 8 components).
	for i := 0; i < b.N; i++ {
		cfg := ScaledConfig(64, time.Hour)
		cfg.Seed = uint64(i)
		if _, _, err := Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateFleet runs the twin at the paper's full floor scale
// (4,608 nodes) for a short span, including workload generation and
// scheduling. This is the configuration the tentpole throughput target is
// measured against.
func BenchmarkSimulateFleet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := ScaledConfig(4608, 30*time.Minute)
		cfg.Seed = uint64(i)
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimSteadyState isolates the hot loop: the system is built once
// (workload generation, scheduling, and per-node state construction stay
// outside the timer) and each iteration re-runs the window loop on the warm
// state. B/op and allocs/op here are the steady-state cost of Run itself;
// the reported windows metric divides them into per-window terms.
func BenchmarkSimSteadyState(b *testing.B) {
	cfg := ScaledConfig(256, time.Hour)
	s, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	windows := float64(cfg.DurationSec / cfg.StepSec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(windows, "windows/run")
}

func BenchmarkTable3Classes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = ReportTable3()
	}
}

func BenchmarkFig4MeterValidation(b *testing.B) {
	d, _ := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Figure4Validation(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5YearTrends(b *testing.B) {
	d, _ := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Figure5Trends(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6EnergyPowerKDE(b *testing.B) {
	d, _ := benchRun(b)
	recs := BuildJobRecords(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Figure6EnergyPower(recs, 40)
	}
}

func BenchmarkFig7JobCDFs(b *testing.B) {
	d, _ := benchRun(b)
	recs := BuildJobRecords(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Figure7JobCDFs(recs)
	}
}

func BenchmarkFig8DomainBreakdown(b *testing.B) {
	d, _ := benchRun(b)
	recs := BuildJobRecords(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Figure8DomainBreakdown(recs)
	}
}

func BenchmarkFig9CPUGPUKde(b *testing.B) {
	d, _ := benchRun(b)
	recs := BuildJobRecords(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Figure9ComponentKDE(recs, 40)
	}
}

func BenchmarkFig10PowerDynamics(b *testing.B) {
	d, _ := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Figure10Dynamics(d)
	}
}

func BenchmarkFig11EdgeSnapshots(b *testing.B) {
	d, _ := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Figure11EdgeSnapshots(d, time.Minute, 4*time.Minute)
	}
}

func BenchmarkFig12ThermalResponse(b *testing.B) {
	d, _ := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Figure12ThermalResponse(d, time.Minute, 4*time.Minute)
	}
}

func BenchmarkTable4FailureComposition(b *testing.B) {
	d, _ := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Table4Composition(d)
	}
}

func BenchmarkFig13FailureCorrelation(b *testing.B) {
	d, _ := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Figure13Correlation(d, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14FailuresPerProject(b *testing.B) {
	d, _ := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Figure14FailuresPerProject(d, false, 15)
	}
}

func BenchmarkFig15ThermalExtremity(b *testing.B) {
	d, _ := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Figure15ThermalExtremity(d)
	}
}

func BenchmarkFig16PlacementCounts(b *testing.B) {
	d, _ := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Figure16Placement(d, true)
	}
}

func BenchmarkFig17Variability(b *testing.B) {
	_, vc := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Figure17Variability(vc, 6); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §3) ---

// BenchmarkAblationCoarsenWindow sweeps the coarsening window: the paper
// chose 10 s as the balance between fidelity and volume.
func BenchmarkAblationCoarsenWindow(b *testing.B) {
	samples := make([]tsagg.Sample, 86400)
	for i := range samples {
		samples[i] = tsagg.Sample{T: int64(i), V: float64(500 + i%1800)}
	}
	for _, window := range []int64{1, 10, 60} {
		window := window
		b.Run(benchName("window", window), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = tsagg.Coarsen(samples, window)
			}
		})
	}
}

// BenchmarkAblationEdgeFidelity measures how the coarsening window affects
// detected edge counts (reported via b.ReportMetric) and detection cost.
func BenchmarkAblationEdgeFidelity(b *testing.B) {
	d, _ := benchRun(b)
	for _, factor := range []int{1, 6, 30} {
		factor := factor
		b.Run(benchName("downsample", int64(factor)), func(b *testing.B) {
			series := d.ClusterPower.Downsample(factor)
			var edges int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				edges = len(core.DetectEdges(series, d.Nodes))
			}
			b.ReportMetric(float64(edges), "edges")
		})
	}
}

// BenchmarkAblationWorkers sweeps the node-update parallelism of the twin.
func BenchmarkAblationWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 0} {
		workers := workers
		b.Run(benchName("workers", int64(workers)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ScaledConfig(64, 30*time.Minute)
				cfg.Workers = workers
				s, err := sim.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationKDEGrid sweeps the KDE grid resolution of Figure 6.
func BenchmarkAblationKDEGrid(b *testing.B) {
	d, _ := benchRun(b)
	recs := BuildJobRecords(d)
	for _, grid := range []int{20, 40, 80} {
		grid := grid
		b.Run(benchName("grid", int64(grid)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = Figure6EnergyPower(recs, grid)
			}
		})
	}
}

func benchName(k string, v int64) string {
	if v == 0 {
		return k + "=auto"
	}
	return fmt.Sprintf("%s=%d", k, v)
}

// BenchmarkFig5YearSurvey runs the sampled-year seasonal analysis (12
// parallel monthly simulations) — the heavyweight Figure 5 regenerator.
func BenchmarkFig5YearSurvey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trends, err := YearSurvey(YearSurveyConfig{
			Seed: uint64(i), Nodes: 36, SpanPerMonthSec: 3600, Jobs: 15,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = SummarizeYear(trends)
	}
}

// BenchmarkSection2ThermalBands regenerates the operator-dashboard band
// summary.
func BenchmarkSection2ThermalBands(b *testing.B) {
	d, _ := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ThermalBandSummary(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSection9Fingerprints regenerates the future-work fingerprint
// clustering and prediction evaluation.
func BenchmarkSection9Fingerprints(b *testing.B) {
	d, _ := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fps := BuildFingerprints(d)
		if _, err := ClusterFingerprints(fps, 5, 9); err != nil {
			b.Fatal(err)
		}
		if _, err := EvaluateFingerprintPrediction(fps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSection8PowerCap runs the power-aware scheduling what-if
// (baseline + two capped arms).
func BenchmarkSection8PowerCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := ScaledConfig(48, 2*time.Hour)
		base.Seed = uint64(i)
		if _, err := PowerCapExperiment(base, []float64{0.85, 0.7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSampling sweeps the per-window 1 Hz emulation depth:
// more sub-samples refine the window min/max/std at linear cost.
func BenchmarkAblationSampling(b *testing.B) {
	for _, samples := range []int{1, 2, 10} {
		samples := samples
		b.Run(benchName("samples", int64(samples)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ScaledConfig(48, 30*time.Minute)
				cfg.SamplesPerWindow = samples
				cfg.Seed = uint64(i)
				if _, _, err := Simulate(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSection6Generations runs the Titan-vs-Summit failure-bias
// comparison experiment.
func BenchmarkSection6Generations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := CompareGenerations(uint64(i), 32, 25, 30000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Query engine benchmarks (internal/query over a store archive) ---

var (
	queryBenchOnce sync.Once
	queryBenchDir  string
	queryBenchErr  error
)

const (
	queryBenchNodes = 36
	queryBenchDays  = 4
	queryBenchStep  = int64(60)
)

// queryBenchArchive writes one shared node-power archive (4 days, 36 nodes,
// 60 s cadence ≈ 207k rows) in the collector's real shape: seven Gorilla-
// encoded columns plus the persisted pre-aggregate companion, so the
// benchmarks exercise the same decode work a production archive would.
func queryBenchArchive(b *testing.B) string {
	b.Helper()
	queryBenchOnce.Do(func() {
		queryBenchDir, queryBenchErr = os.MkdirTemp("", "querybench")
		if queryBenchErr != nil {
			return
		}
		queryBenchErr = writeQueryBenchArchive(queryBenchDir)
	})
	if queryBenchErr != nil {
		b.Fatal(queryBenchErr)
	}
	return queryBenchDir
}

func writeQueryBenchArchive(dir string) error {
	ds, err := store.NewDataset(dir, "node-power")
	if err != nil {
		return err
	}
	rds, err := store.NewDataset(dir, source.RollupDatasetName("node-power"))
	if err != nil {
		return err
	}
	tcfg, err := topology.PresetScaled("", queryBenchNodes)
	if err != nil {
		return err
	}
	floor, err := topology.New(tcfg)
	if err != nil {
		return err
	}
	statCols := []string{
		"input_power.count", "input_power.min", "input_power.max",
		"input_power.mean", "input_power.std",
	}
	for day := 0; day < queryBenchDays; day++ {
		var ts, node, count []int64
		var mn, mx, mean, std []float64
		red := source.NewRollupReducer(floor, statCols)
		vals := make([]float64, len(statCols))
		for tm := int64(day) * 86400; tm < int64(day+1)*86400; tm += queryBenchStep {
			for n := int64(0); n < queryBenchNodes; n++ {
				v := 2000 + 10*float64(n) + float64(tm%3600)*0.01
				ts = append(ts, tm)
				node = append(node, n)
				count = append(count, 6)
				mn = append(mn, v-1)
				mx = append(mx, v+1)
				mean = append(mean, v)
				std = append(std, 0.5)
				vals[0], vals[1], vals[2], vals[3], vals[4] = 6, v-1, v+1, v, 0.5
				if err := red.Add(tm, n, vals); err != nil {
					return err
				}
			}
		}
		tab := &store.Table{Cols: []store.Column{
			{Name: "timestamp", Ints: ts},
			{Name: "node", Ints: node},
			{Name: "input_power.count", Ints: count},
			{Name: "input_power.min", Floats: mn},
			{Name: "input_power.max", Floats: mx},
			{Name: "input_power.mean", Floats: mean},
			{Name: "input_power.std", Floats: std},
		}}
		if err := ds.WriteDayCodec(day, tab, store.CodecGorilla); err != nil {
			return err
		}
		if err := rds.WriteDayCodec(day, red.Table(), store.CodecGorilla); err != nil {
			return err
		}
	}
	return nil
}

// queryBenchMode selects the engine scan mode for the query benchmarks.
// `make bench-query` runs the suite twice — QUERYBENCH_MODE=materialized
// records the decode-everything baseline, the default run records the
// vectorized path (streaming iterators + persisted pre-aggregates) — and
// benchjson files both labels into BENCH_query.json for the trend report.
func queryBenchMode() query.ScanMode {
	if os.Getenv("QUERYBENCH_MODE") == "materialized" {
		return query.ScanMaterialize
	}
	return query.ScanAuto
}

func queryBenchEngine(b *testing.B) *query.Engine {
	b.Helper()
	eng, err := query.Open(query.Config{
		Dir: queryBenchArchive(b), Nodes: queryBenchNodes, ScanMode: queryBenchMode(),
	})
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

func queryBenchRequest() query.RangeRequest {
	return query.RangeRequest{
		Dataset: "node-power", Column: "input_power.mean", Node: -1,
		T0: 3600, T1: 3*86400 + 3600, Step: 600,
	}
}

// BenchmarkQueryRange measures a cold three-day fleet-wide downsample:
// every iteration flushes the decoded-table cache, so this is the raw
// decode+aggregate path (streaming iterator by default, full table
// materialization under QUERYBENCH_MODE=materialized).
func BenchmarkQueryRange(b *testing.B) {
	eng := queryBenchEngine(b)
	ctx := context.Background()
	req := queryBenchRequest()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.FlushCache()
		if _, err := eng.Range(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryRollup measures a cold full-span cabinet rollup on the
// pre-aggregation grid (600 s windows). The default mode answers from the
// persisted companion partitions; the materialized baseline decodes and
// scans every per-node row. The gap is the value of write-time rollups.
func BenchmarkQueryRollup(b *testing.B) {
	eng := queryBenchEngine(b)
	ctx := context.Background()
	req := query.RollupRequest{
		Dataset: "node-power", Column: "input_power.mean", Group: query.GroupCabinet,
		T0: 0, T1: queryBenchDays * 86400, Step: 600,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.FlushCache()
		if _, err := eng.Rollup(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryRollupScan is the same cold cabinet rollup off the
// pre-aggregation grid (1800 s windows), forcing a per-node scan in every
// mode: it isolates aggregate-during-decode iteration against table
// materialization without the pre-aggregate shortcut.
func BenchmarkQueryRollupScan(b *testing.B) {
	eng := queryBenchEngine(b)
	ctx := context.Background()
	req := query.RollupRequest{
		Dataset: "node-power", Column: "input_power.mean", Group: query.GroupCabinet,
		T0: 0, T1: queryBenchDays * 86400, Step: 1800,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.FlushCache()
		if _, err := eng.Rollup(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamIngest measures the live plane end to end in-process:
// one iteration pushes a full fleet window (256 nodes × power + 6 GPU
// temperatures) through Pipeline.Ingest and on through the sharded
// coarsen → merge → operator chain. Report is ns per ingested window;
// divide by 7×nodes for per-sample cost. The pipeline is closed (and so
// fully drained) once per benchmark run, outside the timer.
func BenchmarkStreamIngest(b *testing.B) {
	const nodes = 256
	pipe, err := stream.NewPipeline(stream.Config{
		Nodes:      nodes,
		StepSec:    10,
		Shards:     4,
		QueueDepth: 4096,
	})
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]telemetry.Sample, 0, nodes*7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := int64(i) * 10
		batch = batch[:0]
		for n := 0; n < nodes; n++ {
			batch = append(batch, telemetry.Sample{
				Node: topology.NodeID(n), Metric: telemetry.MetricInputPower,
				T: t, Value: float64(10_000 + n + i%50),
			})
			for g := topology.GPUSlot(0); g < 6; g++ {
				batch = append(batch, telemetry.Sample{
					Node: topology.NodeID(n), Metric: telemetry.GPUCoreTempMetric(g),
					T: t, Value: float64(30 + (n+int(g)+i)%40),
				})
			}
		}
		pipe.Ingest(batch)
	}
	b.StopTimer()
	pipe.Close()
	snap := pipe.Snapshot()
	if snap.Ingest.Dropped > 0 {
		b.Fatalf("benchmark overran the queues: %+v", snap.Ingest)
	}
	b.ReportMetric(float64(snap.Ingest.Frames), "frames")
}

// BenchmarkQueryRangeCached is the same query against a warm cache: the
// speedup over BenchmarkQueryRange is the value of the decoded-table cache.
func BenchmarkQueryRangeCached(b *testing.B) {
	eng := queryBenchEngine(b)
	ctx := context.Background()
	req := queryBenchRequest()
	// Two warm-up passes: under the doorkeeper admission policy the first
	// touch streams without caching; the second materializes and admits.
	for i := 0; i < 2; i++ {
		if _, err := eng.Range(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Range(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}
