// Package repro is the public API of the Summit power/energy/thermal
// reproduction (Shin et al., SC '21): a closed-loop digital twin of the
// Summit HPC data center plus the paper's full analysis pipeline.
//
// The typical flow is:
//
//	cfg := repro.ScaledConfig(256, 6*time.Hour)
//	data, result, err := repro.Simulate(cfg)
//	rep, err := repro.Figure4Validation(data)
//
// Every table and figure of the paper's evaluation has a matching
// Figure*/Table* entry point; Report* helpers render them as text.
package repro

import (
	"time"

	"repro/internal/core"
	"repro/internal/failures"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/units"
	"repro/internal/workload"
)

// Config parameterizes a simulation run. It is the digital twin's knob
// set: system size, span, coarsening window, sampling, workload volume and
// failure acceleration.
type Config = sim.Config

// RunData is the collected telemetry/job/facility/failure dataset of a run
// (the in-memory equivalent of the paper's Datasets 0–13).
type RunData = core.RunData

// Result summarizes a completed simulation.
type Result = sim.Result

// Allocation is one scheduled job placement.
type Allocation = scheduler.Allocation

// Job is one batch job and its application power profile.
type Job = workload.Job

// FailureEvent is one GPU XID error with its captured context.
type FailureEvent = failures.Event

// SchedulingClass re-exports the Table 3 class identifiers.
type SchedulingClass = units.SchedulingClass

// Scheduling classes (paper Table 3).
const (
	Class1 = units.Class1
	Class2 = units.Class2
	Class3 = units.Class3
	Class4 = units.Class4
	Class5 = units.Class5
)

// SummitNodes is the full-scale system size.
const SummitNodes = units.SummitNodes

// ScaledConfig returns a deterministic configuration for a scaled system
// of the given node count over the given span, with workload volume
// proportional to Summit's ~840k jobs/year.
func ScaledConfig(nodes int, span time.Duration) Config {
	return sim.Scaled(nodes, int64(span/time.Second))
}

// Simulate builds the digital twin from cfg, runs it with the standard
// collector attached, and returns the run data and simulation result.
func Simulate(cfg Config) (*RunData, *Result, error) {
	return core.CollectRun(cfg)
}

// FleetRun is one cluster's outcome in a multi-cluster simulation.
type FleetRun = core.FleetRun

// DeriveSeed derives cluster i's seed from a fleet base seed; distinct i
// yield well-separated, reproducible streams.
func DeriveSeed(base uint64, i int) uint64 { return sim.DeriveSeed(base, i) }

// SimulateFleet runs every cluster config as an independent simulation on
// one worker pool (workers <= 0 sizes it automatically). Each cluster's
// output is bit-identical to simulating it alone with the same config.
func SimulateFleet(cfgs []Config, workers int) ([]FleetRun, error) {
	return core.CollectFleet(cfgs, workers, nil)
}

// SimulateWithVariability additionally captures per-GPU detail for the
// run's exemplar (largest) job, for the Figure 17 analysis.
func SimulateWithVariability(cfg Config) (*RunData, *core.VariabilityCollector, *Result, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, nil, err
	}
	col := core.NewCollector(s, cfg)
	vc, err := core.NewVariabilityCollector(s, -1)
	if err != nil {
		return nil, nil, nil, err
	}
	res, err := s.Run(col, vc)
	if err != nil {
		return nil, nil, nil, err
	}
	col.SetFailures(res.Failures)
	return col.Data(), vc, res, nil
}

// Data planes. A RunSource abstracts where a run's telemetry lives — in
// memory right after Simulate, or in a columnar archive on disk — so the
// same analyses run over both and cannot drift.

// RunSource is the unified read interface over a run (live or archived).
type RunSource = source.RunSource

// ArchiveConfig parameterizes OpenArchive.
type ArchiveConfig = source.ArchiveConfig

// NewMemorySource wraps collected run data as a RunSource (the live plane).
func NewMemorySource(d *RunData) RunSource { return d.Source() }

// OpenArchive opens an archive directory written by WriteDatasets (or the
// summitsim CLI) as a RunSource (the archived plane). Reads are
// partition-pruned, column-selective and cached.
func OpenArchive(cfg ArchiveConfig) (RunSource, error) { return source.OpenArchive(cfg) }

// WriteDatasets archives a run into dir as daily-partitioned columnar
// datasets readable by OpenArchive, cmd/analyze and cmd/queryd.
func WriteDatasets(dir string, d *RunData) error { return core.WriteDatasets(dir, d) }

// Source-based analysis entry points: each works identically on either
// plane (the parity test in internal/core holds them bit-identical).

// EdgesFromSource detects cluster-level power edges (>|10 MW|-equivalent).
func EdgesFromSource(src RunSource) ([]core.Edge, error) { return core.EdgesFromSource(src) }

// SwingsFromSource measures steepest swings and the FFT swing spectrum.
func SwingsFromSource(src RunSource) (*core.SwingReport, error) { return core.SwingsFromSource(src) }

// ThermalBandsFromSource reduces GPU temperature band occupancy.
func ThermalBandsFromSource(src RunSource) ([]core.BandSummary, error) {
	return core.ThermalBandsFromSource(src)
}

// EarlyWarningFromSource evaluates the §6.1 precursor→outcome pairs.
func EarlyWarningFromSource(src RunSource, window time.Duration) ([]core.PrecursorStats, error) {
	return core.EarlyWarningFromSource(src, int64(window/time.Second))
}

// OvercoolingFromSource quantifies cooling delivered beyond the heat load.
func OvercoolingFromSource(src RunSource) (*core.OvercoolingReport, error) {
	return core.OvercoolingFromSource(src)
}

// ValidationFromSource compares MSB meters against sensor summation.
func ValidationFromSource(src RunSource) (*core.ValidationReport, error) {
	return core.ValidationFromSource(src)
}

// FailureCompositionFromSource tallies the failure log by XID type.
func FailureCompositionFromSource(src RunSource) ([]core.FailureComposition, error) {
	return core.FailureCompositionFromSource(src)
}

// FailureCorrelationFromSource computes failure co-occurrence correlation.
func FailureCorrelationFromSource(src RunSource, alpha float64) ([]core.CorrelationCell, error) {
	return core.FailureCorrelationFromSource(src, alpha)
}

// SummaryFromSource reduces every canonical series to run-long statistics.
func SummaryFromSource(src RunSource) ([]core.SeriesSummary, error) {
	return core.SummaryFromSource(src)
}

// Analysis entry points (one per paper table/figure). These are thin,
// documented aliases over internal/core so downstream users never import
// internal packages.

// Figure4Validation compares per-node sensor summation with MSB meters.
func Figure4Validation(d *RunData) (*core.ValidationReport, error) {
	return core.Figure4Validation(d)
}

// Figure5Trends summarizes weekly power/energy/PUE.
func Figure5Trends(d *RunData) (*core.TrendReport, error) {
	return core.Figure5Trends(d)
}

// BuildJobRecords reduces job series to per-job records.
func BuildJobRecords(d *RunData) []core.JobRecord { return core.BuildJobRecords(d) }

// Figure6EnergyPower computes per-class (energy, max power) joint KDEs.
func Figure6EnergyPower(recs []core.JobRecord, gridN int) []core.EnergyPowerKDE {
	return core.Figure6EnergyPower(recs, gridN)
}

// Figure7JobCDFs computes the leadership-class job feature CDFs.
func Figure7JobCDFs(recs []core.JobRecord) []core.JobCDFs {
	return core.Figure7JobCDFs(recs)
}

// Figure8DomainBreakdown summarizes job power/energy by science domain.
func Figure8DomainBreakdown(recs []core.JobRecord) []core.DomainBreakdown {
	return core.Figure8DomainBreakdown(recs)
}

// Figure9ComponentKDE computes CPU-vs-GPU power joint KDEs per class group.
func Figure9ComponentKDE(recs []core.JobRecord, gridN int) []core.ComponentKDE {
	return core.Figure9ComponentKDE(recs, gridN)
}

// Figure10Dynamics characterizes per-job power edges and FFT components.
func Figure10Dynamics(d *RunData) *core.DynamicsReport { return core.Figure10Dynamics(d) }

// Figure11EdgeSnapshots superimposes power/PUE around rising edges.
func Figure11EdgeSnapshots(d *RunData, before, after time.Duration) []core.EdgeSnapshotSet {
	return core.Figure11EdgeSnapshots(d, int64(before/time.Second), int64(after/time.Second))
}

// Figure12ThermalResponse superimposes thermal/cooling state around edges.
func Figure12ThermalResponse(d *RunData, before, after time.Duration) []core.ThermalResponseSet {
	return core.Figure12ThermalResponse(d, int64(before/time.Second), int64(after/time.Second))
}

// Table4Composition tallies the failure log by XID type.
func Table4Composition(d *RunData) []core.FailureComposition {
	return core.Table4Composition(d.Failures, d.Nodes)
}

// Figure13Correlation computes Bonferroni-corrected failure co-occurrence.
func Figure13Correlation(d *RunData, alpha float64) ([]core.CorrelationCell, error) {
	return core.Figure13Correlation(d.Failures, d.Nodes, alpha)
}

// Figure14FailuresPerProject ranks projects by failures per node-hour.
func Figure14FailuresPerProject(d *RunData, hardwareOnly bool, topN int) []core.ProjectFailureRate {
	return core.Figure14FailuresPerProject(d, hardwareOnly, topN)
}

// Figure15ThermalExtremity collects per-type failure thermal context.
func Figure15ThermalExtremity(d *RunData) []core.ThermalExtremity {
	return core.Figure15ThermalExtremity(d.Failures, d.Nodes, 0.8)
}

// Figure16Placement tallies failures per GPU slot.
func Figure16Placement(d *RunData, highlightOnly bool) []core.PlacementCounts {
	return core.Figure16Placement(d.Failures, highlightOnly)
}

// Figure17Variability reduces an exemplar job's per-GPU capture.
func Figure17Variability(vc *core.VariabilityCollector, instants int) (*core.VariabilityReport, error) {
	return core.Figure17Variability(vc, instants)
}

// Future-work features (paper §9): job power-profile fingerprinting.

// Fingerprint is a job's power-profile feature vector.
type Fingerprint = core.Fingerprint

// Portrait is a cluster of fingerprints (a user/project power portrait).
type Portrait = core.Portrait

// BuildFingerprints extracts one fingerprint per observed job.
func BuildFingerprints(d *RunData) []Fingerprint { return core.BuildFingerprints(d) }

// ClusterFingerprints groups fingerprints into k portraits via k-means.
func ClusterFingerprints(fps []Fingerprint, k int, seed uint64) ([]Portrait, error) {
	return core.ClusterFingerprints(fps, k, seed)
}

// EvaluateFingerprintPrediction scores portrait-based max-power prediction
// against a global-mean baseline.
func EvaluateFingerprintPrediction(fps []Fingerprint) (*core.PredictionReport, error) {
	return core.EvaluateFingerprintPrediction(fps)
}

// YearSurvey samples each month of 2020 with an independent scaled
// simulation and aggregates the seasonal power/PUE/chiller structure of
// Figure 5. Months run in parallel; the result is deterministic.
func YearSurvey(cfg core.YearSurveyConfig) ([]core.MonthlyTrend, error) {
	return core.YearSurvey(cfg)
}

// SummarizeYear reduces a year survey to the paper's headline PUE numbers.
func SummarizeYear(trends []core.MonthlyTrend) core.YearSummary {
	return core.SummarizeYear(trends)
}

// YearSurveyConfig re-exports the survey configuration.
type YearSurveyConfig = core.YearSurveyConfig

// PowerCapExperiment runs the paper's concluding what-if: the same
// workload scheduled under a sweep of power-aware admission caps
// (fractions of the uncapped peak), measuring the peak/average trade.
func PowerCapExperiment(base Config, capFracs []float64) ([]core.PowerCapOutcome, error) {
	return core.PowerCapExperiment(base, capFracs)
}

// ThermalBandSummary reduces the per-window GPU temperature band counts
// to the §2 operational dashboard view.
func ThermalBandSummary(d *RunData) ([]core.BandSummary, error) {
	return core.ThermalBandSummary(d)
}

// Overcooling quantifies cooling delivered beyond the IT heat load
// (paper §5's overcooling observation).
func Overcooling(d *RunData) (*core.OvercoolingReport, error) {
	return core.Overcooling(d)
}

// EarlyWarningFromRun evaluates the §6.1 precursor→outcome diagnostic
// pairs over a run.
func EarlyWarningFromRun(d *RunData, window time.Duration) ([]core.PrecursorStats, error) {
	return core.EarlyWarningFromRun(d, int64(window/time.Second))
}

// CompareGenerations runs the §6-summary experiment: identical thermal
// context through the Summit failure model and a Titan-mode (hot-biased)
// model, quantifying the generation flip in failure thermal extremity.
func CompareGenerations(seed uint64, nodes, steps int, rateScale float64) (*core.GenerationComparison, error) {
	return core.CompareGenerations(seed, nodes, steps, rateScale)
}

// SchedulingByClass summarizes queue waits and usage per scheduling class.
func SchedulingByClass(d *RunData) []core.SchedulingStats {
	return core.SchedulingByClass(d)
}
